//! The incident flight recorder.
//!
//! A [`Recorder`] captures every nondeterministic input a scenario consumed
//! — the seed and topology in a [`RecordHeader`], the job arrival stream,
//! the fault plan, and a digest of each probe/gossip round as the monitor
//! consumed it — plus a digest of every journal event and of the final
//! metrics registry, into a compact versioned [`Record`]. Because the whole
//! simulator runs in virtual time off these inputs, the record is both a
//! *reproduction recipe* (re-drive the scenario from the header and assert
//! the digests match, see [`replay`](crate::replay)) and a *tamper-evident
//! trace* (the first digest that differs pinpoints the first divergent
//! event).
//!
//! On top of the input capture, the recorder keeps a bounded ring of
//! [`EvidenceSnapshot`]s — the journal tail, active traces, and latest
//! health snapshot frozen at each anomaly/SLO-breach rising edge — which is
//! what [`rca`](crate::rca) and human operators read after the fact, even
//! when the journal ring has since evicted the original events.
//!
//! Like [`Telemetry`](crate::telemetry::Telemetry), the handle lives on
//! every [`Obs`](crate::ctx::Obs) but stays disabled (every call a cheap
//! no-op) until [`Recorder::enable`]. Wall-clock nanoseconds spent inside
//! recorder calls are accumulated so reports can pin the always-on cost.

use crate::journal::Event;
use crate::lock;
use crate::metrics::Metrics;
use nlrm_sim_core::time::SimTime;
use std::sync::{Arc, Mutex};

/// Record format version; bumped whenever the encoding changes shape.
pub const RECORD_VERSION: u32 = 1;

/// Keep at most this many evidence snapshots (oldest dropped first).
pub const MAX_EVIDENCE: usize = 32;

/// Keep at most this many journal-tail lines per evidence snapshot.
pub const EVIDENCE_TAIL: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte slice: the digest primitive for the whole record
/// format (fast, dependency-free, and stable across platforms).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Incremental FNV-1a fold, for digesting a stream of values (probe
/// outcomes, gossip rows) without materializing them.
#[derive(Debug, Clone, Copy)]
pub struct DigestFold(u64);

impl DigestFold {
    /// An empty fold (digest of zero bytes).
    pub fn new() -> DigestFold {
        DigestFold(FNV_OFFSET)
    }

    /// Fold in raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold in a `u64` (little-endian bytes).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold in an `f64` by bit pattern — exact, no rounding ambiguity.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.u64(v.to_bits())
    }

    /// The digest so far.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl Default for DigestFold {
    fn default() -> Self {
        DigestFold::new()
    }
}

/// The deterministic scenario parameters a replay re-derives everything
/// else from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecordHeader {
    /// Human label for the recorded scenario.
    pub label: String,
    /// RNG seed.
    pub seed: u64,
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Scenario checkpoints, in virtual seconds.
    pub checkpoints: Vec<u64>,
    /// Was the fault storyline injected?
    pub faulted: bool,
    /// Was the oversized job submitted?
    pub submit_huge: bool,
    /// Was the telemetry loop enabled?
    pub telemetry: bool,
    /// Did the harness mirror granted leases into node job-load (so
    /// placements shape the load signal)?
    pub lease_load: bool,
    /// Did the harness complete the previously started job at each
    /// checkpoint?
    pub complete_prev: bool,
}

/// One job submission, as consumed by the broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalRecord {
    /// Virtual submission time.
    pub at: SimTime,
    /// Job display name.
    pub name: String,
    /// Requested process count.
    pub procs: u32,
}

/// One scheduled fault, target and action in their codec string forms
/// (the bench scenario layer owns the `FaultTarget` ↔ string mapping so
/// `nlrm-obs` stays independent of the monitor crate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Virtual firing time.
    pub at: SimTime,
    /// Target codec string (e.g. `daemon:nodestate(n3)`, `master`).
    pub target: String,
    /// Action codec string (`kill`, `hang:120`, `delay:60`).
    pub action: String,
}

/// A digest of one nondeterministic input stream round as it was consumed
/// (a latency/bandwidth probe round, a shard sweep, a gossip exchange).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRecord {
    /// Virtual time of the round.
    pub at: SimTime,
    /// Stream kind (`probe:latency`, `probe:bandwidth`, `probe:shard`,
    /// `gossip`).
    pub kind: String,
    /// Values consumed this round.
    pub count: u64,
    /// FNV-1a fold over the consumed values, in consumption order.
    pub digest: u64,
}

/// The digest of one journal event (over its canonical JSON form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalDigest {
    /// The event's journal sequence number.
    pub seq: u64,
    /// The event kind name, kept so divergence reports read well.
    pub kind: String,
    /// FNV-1a of [`Event::to_json`].
    pub digest: u64,
}

/// Journal/span/health state frozen at one anomaly or SLO-breach rising
/// edge — the evidence window RCA walks, preserved even after the journal
/// ring evicts the underlying events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceSnapshot {
    /// Virtual time of the trigger.
    pub at: SimTime,
    /// Trigger label (`anomaly:staleness_surge`, `slo:queue_wait_p99`).
    pub trigger: String,
    /// Journal seq of the trigger event.
    pub trigger_seq: u64,
    /// Rendered journal tail (most recent events last).
    pub tail: Vec<String>,
    /// Raw ids of traces with open spans at the trigger.
    pub active_traces: Vec<u64>,
    /// Latest derived health snapshot as JSON (`null` if none yet).
    pub health_json: String,
}

/// A finalized flight record: the full reproduction recipe plus outcome
/// digests and the evidence ring.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Record {
    /// Format version ([`RECORD_VERSION`] when produced by this build).
    pub version: u32,
    /// Scenario parameters.
    pub header: RecordHeader,
    /// The job arrival stream, in submission order.
    pub arrivals: Vec<ArrivalRecord>,
    /// The fault plan, in schedule order.
    pub faults: Vec<FaultRecord>,
    /// Input-stream round digests, in consumption order.
    pub streams: Vec<StreamRecord>,
    /// Per-event journal digests, in emission order.
    pub journal: Vec<JournalDigest>,
    /// Total events the journal recorded (including later evictions).
    pub journal_len: u64,
    /// FNV-1a of the final metrics registry's canonical JSON.
    pub metrics_digest: u64,
    /// Evidence snapshots captured at anomaly/breach edges.
    pub evidence: Vec<EvidenceSnapshot>,
}

impl Record {
    /// Whole-record digest: FNV-1a over the canonical encoding.
    pub fn digest(&self) -> u64 {
        fnv1a(self.encode().as_bytes())
    }

    /// Serialize to the line-based record format (see DESIGN.md §14).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("nlrm-record v{}\n", self.version));
        out.push_str(&format!("label {}\n", self.header.label));
        out.push_str(&format!("seed {}\n", self.header.seed));
        out.push_str(&format!("nodes {}\n", self.header.nodes));
        let cps: Vec<String> = self.header.checkpoints.iter().map(u64::to_string).collect();
        out.push_str(&format!("checkpoints {}\n", cps.join(",")));
        out.push_str(&format!(
            "opts faulted={} huge={} telemetry={} lease_load={} complete_prev={}\n",
            self.header.faulted,
            self.header.submit_huge,
            self.header.telemetry,
            self.header.lease_load,
            self.header.complete_prev
        ));
        for a in &self.arrivals {
            out.push_str(&format!(
                "arrival {} {} {}\n",
                a.at.as_micros(),
                a.procs,
                a.name
            ));
        }
        for f in &self.faults {
            out.push_str(&format!(
                "fault {} {} {}\n",
                f.at.as_micros(),
                f.action,
                f.target
            ));
        }
        for s in &self.streams {
            out.push_str(&format!(
                "stream {} {} {:016x} {}\n",
                s.at.as_micros(),
                s.count,
                s.digest,
                s.kind
            ));
        }
        for j in &self.journal {
            out.push_str(&format!("jevent {} {:016x} {}\n", j.seq, j.digest, j.kind));
        }
        out.push_str(&format!("journal_len {}\n", self.journal_len));
        out.push_str(&format!("metrics {:016x}\n", self.metrics_digest));
        for e in &self.evidence {
            out.push_str(&format!(
                "evidence {} {} {}\n",
                e.at.as_micros(),
                e.trigger_seq,
                e.trigger
            ));
            let traces: Vec<String> = e.active_traces.iter().map(u64::to_string).collect();
            out.push_str(&format!("etraces {}\n", traces.join(",")));
            for line in &e.tail {
                out.push_str(&format!("etail {line}\n"));
            }
            out.push_str(&format!("ehealth {}\n", e.health_json));
        }
        out.push_str("end\n");
        out
    }

    /// Parse the line-based record format back into a [`Record`].
    pub fn decode(text: &str) -> Result<Record, String> {
        let mut rec = Record::default();
        let mut saw_magic = false;
        let mut saw_end = false;
        for (lineno, line) in text.lines().enumerate() {
            let err = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
            if !saw_magic {
                let v = line
                    .strip_prefix("nlrm-record v")
                    .ok_or_else(|| err("missing magic"))?;
                rec.version = v.parse().map_err(|_| err("bad version"))?;
                if rec.version != RECORD_VERSION {
                    return Err(format!(
                        "unsupported record version {} (this build reads v{RECORD_VERSION})",
                        rec.version
                    ));
                }
                saw_magic = true;
                continue;
            }
            let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
            match tag {
                "label" => rec.header.label = rest.to_string(),
                "seed" => rec.header.seed = rest.parse().map_err(|_| err("bad seed"))?,
                "nodes" => rec.header.nodes = rest.parse().map_err(|_| err("bad nodes"))?,
                "checkpoints" => {
                    for part in rest.split(',').filter(|p| !p.is_empty()) {
                        rec.header
                            .checkpoints
                            .push(part.parse().map_err(|_| err("bad checkpoint"))?);
                    }
                }
                "opts" => {
                    for part in rest.split_whitespace() {
                        let (k, v) = part.split_once('=').ok_or_else(|| err("bad opt"))?;
                        let v: bool = v.parse().map_err(|_| err("bad opt value"))?;
                        match k {
                            "faulted" => rec.header.faulted = v,
                            "huge" => rec.header.submit_huge = v,
                            "telemetry" => rec.header.telemetry = v,
                            "lease_load" => rec.header.lease_load = v,
                            "complete_prev" => rec.header.complete_prev = v,
                            _ => return Err(err("unknown opt")),
                        }
                    }
                }
                "arrival" => {
                    let mut it = rest.splitn(3, ' ');
                    let at: u64 = parse_next(&mut it).map_err(&err)?;
                    let procs: u32 = parse_next(&mut it).map_err(&err)?;
                    let name = it.next().ok_or_else(|| err("missing name"))?;
                    rec.arrivals.push(ArrivalRecord {
                        at: SimTime::from_micros(at),
                        name: name.to_string(),
                        procs,
                    });
                }
                "fault" => {
                    let mut it = rest.splitn(3, ' ');
                    let at: u64 = parse_next(&mut it).map_err(&err)?;
                    let action = it.next().ok_or_else(|| err("missing action"))?.to_string();
                    let target = it.next().ok_or_else(|| err("missing target"))?.to_string();
                    rec.faults.push(FaultRecord {
                        at: SimTime::from_micros(at),
                        target,
                        action,
                    });
                }
                "stream" => {
                    let mut it = rest.splitn(4, ' ');
                    let at: u64 = parse_next(&mut it).map_err(&err)?;
                    let count: u64 = parse_next(&mut it).map_err(&err)?;
                    let digest = parse_hex(it.next()).map_err(&err)?;
                    let kind = it.next().ok_or_else(|| err("missing kind"))?.to_string();
                    rec.streams.push(StreamRecord {
                        at: SimTime::from_micros(at),
                        kind,
                        count,
                        digest,
                    });
                }
                "jevent" => {
                    let mut it = rest.splitn(3, ' ');
                    let seq: u64 = parse_next(&mut it).map_err(&err)?;
                    let digest = parse_hex(it.next()).map_err(&err)?;
                    let kind = it.next().ok_or_else(|| err("missing kind"))?.to_string();
                    rec.journal.push(JournalDigest { seq, kind, digest });
                }
                "journal_len" => {
                    rec.journal_len = rest.parse().map_err(|_| err("bad journal_len"))?
                }
                "metrics" => rec.metrics_digest = parse_hex(Some(rest)).map_err(&err)?,
                "evidence" => {
                    let mut it = rest.splitn(3, ' ');
                    let at: u64 = parse_next(&mut it).map_err(&err)?;
                    let trigger_seq: u64 = parse_next(&mut it).map_err(&err)?;
                    let trigger = it.next().ok_or_else(|| err("missing trigger"))?;
                    rec.evidence.push(EvidenceSnapshot {
                        at: SimTime::from_micros(at),
                        trigger: trigger.to_string(),
                        trigger_seq,
                        tail: Vec::new(),
                        active_traces: Vec::new(),
                        health_json: "null".to_string(),
                    });
                }
                "etraces" => {
                    let e = rec
                        .evidence
                        .last_mut()
                        .ok_or_else(|| err("orphan etraces"))?;
                    for part in rest.split(',').filter(|p| !p.is_empty()) {
                        e.active_traces
                            .push(part.parse().map_err(|_| err("bad trace id"))?);
                    }
                }
                "etail" => rec
                    .evidence
                    .last_mut()
                    .ok_or_else(|| err("orphan etail"))?
                    .tail
                    .push(rest.to_string()),
                "ehealth" => {
                    rec.evidence
                        .last_mut()
                        .ok_or_else(|| err("orphan ehealth"))?
                        .health_json = rest.to_string()
                }
                "end" => {
                    saw_end = true;
                    break;
                }
                _ => return Err(err("unknown tag")),
            }
        }
        if !saw_magic {
            return Err("empty record".to_string());
        }
        if !saw_end {
            return Err("truncated record: no end marker".to_string());
        }
        Ok(rec)
    }
}

fn parse_next<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<T, &'static str> {
    it.next()
        .ok_or("missing field")?
        .parse()
        .map_err(|_| "bad field")
}

fn parse_hex(s: Option<&str>) -> Result<u64, &'static str> {
    u64::from_str_radix(s.ok_or("missing digest")?, 16).map_err(|_| "bad digest")
}

#[derive(Debug)]
struct RecInner {
    header: RecordHeader,
    arrivals: Vec<ArrivalRecord>,
    faults: Vec<FaultRecord>,
    streams: Vec<StreamRecord>,
    journal: Vec<JournalDigest>,
    journal_len: u64,
    evidence: Vec<EvidenceSnapshot>,
    evidence_dropped: u64,
    wall_nanos: u64,
}

/// The flight-recorder handle carried by [`Obs`](crate::ctx::Obs). Cheap to
/// clone; disabled (every call a no-op) until [`Recorder::enable`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<Option<RecInner>>>,
}

impl Recorder {
    /// A disabled handle (the default on every `Obs`).
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Start recording under `header`. Replaces any previous state.
    pub fn enable(&self, header: RecordHeader) {
        *lock::lock(&self.inner) = Some(RecInner {
            header,
            arrivals: Vec::new(),
            faults: Vec::new(),
            streams: Vec::new(),
            journal: Vec::new(),
            journal_len: 0,
            evidence: Vec::new(),
            evidence_dropped: 0,
            wall_nanos: 0,
        });
    }

    /// True once [`Recorder::enable`] has run.
    pub fn is_enabled(&self) -> bool {
        lock::lock(&self.inner).is_some()
    }

    /// Capture one job arrival (no-op while disabled).
    pub fn note_arrival(&self, at: SimTime, name: &str, procs: u32) {
        let mut guard = lock::lock(&self.inner);
        if let Some(inner) = guard.as_mut() {
            let started = std::time::Instant::now();
            inner.arrivals.push(ArrivalRecord {
                at,
                name: name.to_string(),
                procs,
            });
            inner.wall_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Capture one scheduled fault, codec-encoded (no-op while disabled).
    pub fn note_fault(&self, at: SimTime, target: &str, action: &str) {
        let mut guard = lock::lock(&self.inner);
        if let Some(inner) = guard.as_mut() {
            let started = std::time::Instant::now();
            inner.faults.push(FaultRecord {
                at,
                target: target.to_string(),
                action: action.to_string(),
            });
            inner.wall_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Capture one consumed input-stream round (no-op while disabled).
    pub fn note_stream(&self, at: SimTime, kind: &str, count: u64, digest: u64) {
        let mut guard = lock::lock(&self.inner);
        if let Some(inner) = guard.as_mut() {
            let started = std::time::Instant::now();
            inner.streams.push(StreamRecord {
                at,
                kind: kind.to_string(),
                count,
                digest,
            });
            inner.wall_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Digest one accepted journal event (called by the journal's tap;
    /// no-op while disabled).
    pub fn note_journal_event(&self, event: &Event) {
        let mut guard = lock::lock(&self.inner);
        if let Some(inner) = guard.as_mut() {
            let started = std::time::Instant::now();
            inner.journal.push(JournalDigest {
                seq: event.seq,
                kind: event.kind.name().to_string(),
                digest: fnv1a(event.to_json().as_bytes()),
            });
            inner.journal_len += 1;
            inner.wall_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// Freeze one evidence snapshot (bounded ring of [`MAX_EVIDENCE`];
    /// no-op while disabled).
    pub fn snapshot_evidence(&self, snap: EvidenceSnapshot) {
        let mut guard = lock::lock(&self.inner);
        if let Some(inner) = guard.as_mut() {
            let started = std::time::Instant::now();
            inner.evidence.push(snap);
            if inner.evidence.len() > MAX_EVIDENCE {
                inner.evidence.remove(0);
                inner.evidence_dropped += 1;
            }
            inner.wall_nanos += started.elapsed().as_nanos() as u64;
        }
    }

    /// The evidence snapshots captured so far (empty while disabled).
    pub fn evidence(&self) -> Vec<EvidenceSnapshot> {
        lock::lock(&self.inner)
            .as_ref()
            .map_or_else(Vec::new, |i| i.evidence.clone())
    }

    /// Evidence snapshots pushed out of the bounded ring.
    pub fn evidence_dropped(&self) -> u64 {
        lock::lock(&self.inner)
            .as_ref()
            .map_or(0, |i| i.evidence_dropped)
    }

    /// Wall-clock nanoseconds spent inside recorder calls — the always-on
    /// cost of recording.
    pub fn wall_nanos(&self) -> u64 {
        lock::lock(&self.inner).as_ref().map_or(0, |i| i.wall_nanos)
    }

    /// Metric-name fragments excluded from the final metrics digest:
    /// wall-clock measurements (tick/decision latencies in real time)
    /// legitimately differ between a recording and its replay.
    pub const NONDETERMINISTIC_METRICS: &'static [&'static str] =
        &["wall", "alloc_decision_seconds"];

    /// Seal the record: digest the final `metrics` registry (wall-clock
    /// families excluded, see [`Recorder::NONDETERMINISTIC_METRICS`]) and
    /// return the full [`Record`] (`None` while disabled). The recorder
    /// keeps recording; finalize may be called again later.
    pub fn finalize(&self, metrics: &Metrics) -> Option<Record> {
        let canonical = metrics.to_json_excluding(Self::NONDETERMINISTIC_METRICS);
        let metrics_digest = fnv1a(canonical.as_bytes());
        let guard = lock::lock(&self.inner);
        guard.as_ref().map(|inner| Record {
            version: RECORD_VERSION,
            header: inner.header.clone(),
            arrivals: inner.arrivals.clone(),
            faults: inner.faults.clone(),
            streams: inner.streams.clone(),
            journal: inner.journal.clone(),
            journal_len: inner.journal_len,
            metrics_digest,
            evidence: inner.evidence.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventKind, Severity};

    fn sample_record() -> Record {
        Record {
            version: RECORD_VERSION,
            header: RecordHeader {
                label: "surge-daemon-kills".into(),
                seed: 42,
                nodes: 8,
                checkpoints: vec![1100, 1300],
                faulted: true,
                submit_huge: true,
                telemetry: true,
                lease_load: false,
                complete_prev: true,
            },
            arrivals: vec![ArrivalRecord {
                at: SimTime::from_secs(360),
                name: "huge-64".into(),
                procs: 64,
            }],
            faults: vec![FaultRecord {
                at: SimTime::from_secs(400),
                target: "daemon:bandwidth".into(),
                action: "kill".into(),
            }],
            streams: vec![StreamRecord {
                at: SimTime::from_secs(365),
                kind: "probe:latency".into(),
                count: 28,
                digest: 0xdead_beef,
            }],
            journal: vec![JournalDigest {
                seq: 0,
                kind: "daemon_tick".into(),
                digest: 0x1234,
            }],
            journal_len: 1,
            metrics_digest: 0xfeed,
            evidence: vec![EvidenceSnapshot {
                at: SimTime::from_secs(460),
                trigger: "anomaly:staleness_surge".into(),
                trigger_seq: 17,
                tail: vec!["t=460s WARN fault_applied target=x".into()],
                active_traces: vec![4, 8],
                health_json: "{\"utilization\":0.5}".into(),
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let rec = sample_record();
        let decoded = Record::decode(&rec.encode()).expect("decode");
        assert_eq!(decoded, rec);
        assert_eq!(decoded.digest(), rec.digest());
    }

    #[test]
    fn decode_rejects_malformed_input() {
        assert!(Record::decode("").is_err());
        assert!(Record::decode("garbage\n").is_err());
        assert!(Record::decode("nlrm-record v99\nend\n").is_err());
        // truncation (no end marker) is detected
        let enc = sample_record().encode();
        let cut = &enc[..enc.len() - 5];
        assert!(Record::decode(cut).is_err());
        // an unknown tag is an error, not silently skipped
        let bad = enc.replace("journal_len", "journl_len");
        assert!(Record::decode(&bad).is_err());
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let r = Recorder::new();
        r.note_arrival(SimTime::ZERO, "j", 4);
        r.note_stream(SimTime::ZERO, "probe:latency", 1, 2);
        assert!(!r.is_enabled());
        assert!(r.finalize(&Metrics::new()).is_none());
        assert_eq!(r.wall_nanos(), 0);
    }

    #[test]
    fn recorder_captures_inputs_in_order() {
        let r = Recorder::new();
        r.enable(RecordHeader {
            label: "t".into(),
            seed: 1,
            nodes: 4,
            ..RecordHeader::default()
        });
        r.note_arrival(SimTime::from_secs(10), "a", 4);
        r.note_arrival(SimTime::from_secs(20), "b", 8);
        r.note_fault(SimTime::from_secs(15), "master", "kill");
        r.note_stream(SimTime::from_secs(12), "gossip", 6, 99);
        let rec = r.finalize(&Metrics::new()).expect("enabled");
        assert_eq!(rec.arrivals.len(), 2);
        assert_eq!(rec.arrivals[1].name, "b");
        assert_eq!(rec.faults[0].target, "master");
        assert_eq!(rec.streams[0].kind, "gossip");
        // identical registries digest identically; different ones don't
        let m2 = Metrics::new();
        assert_eq!(rec.metrics_digest, r.finalize(&m2).unwrap().metrics_digest);
        m2.inc("x_total");
        assert_ne!(rec.metrics_digest, r.finalize(&m2).unwrap().metrics_digest);
    }

    #[test]
    fn journal_tap_digests_every_event() {
        let r = Recorder::new();
        r.enable(RecordHeader::default());
        let j = crate::journal::Journal::new(2);
        j.attach_recorder(r.clone());
        for i in 0..5u64 {
            j.record(
                Severity::Info,
                SimTime::from_secs(i),
                EventKind::DaemonTick {
                    daemon: format!("d{i}"),
                },
            );
        }
        let rec = r.finalize(&Metrics::new()).unwrap();
        // every recorded event is digested, even ones the ring evicted
        assert_eq!(rec.journal.len(), 5);
        assert_eq!(rec.journal_len, 5);
        assert_eq!(rec.journal[0].seq, 0);
        assert_eq!(rec.journal[4].seq, 4);
        assert!(rec.journal.iter().all(|d| d.kind == "daemon_tick"));
        // digests distinguish events with different payloads
        assert_ne!(rec.journal[0].digest, rec.journal[1].digest);
        assert!(r.wall_nanos() > 0);
    }

    #[test]
    fn evidence_ring_is_bounded() {
        let r = Recorder::new();
        r.enable(RecordHeader::default());
        for i in 0..(MAX_EVIDENCE as u64 + 5) {
            r.snapshot_evidence(EvidenceSnapshot {
                at: SimTime::from_secs(i),
                trigger: "anomaly:load_spike".into(),
                trigger_seq: i,
                tail: vec![],
                active_traces: vec![],
                health_json: "null".into(),
            });
        }
        assert_eq!(r.evidence().len(), MAX_EVIDENCE);
        assert_eq!(r.evidence_dropped(), 5);
        // oldest dropped first
        assert_eq!(r.evidence()[0].trigger_seq, 5);
    }

    #[test]
    fn digest_fold_matches_one_shot_fnv() {
        let mut fold = DigestFold::new();
        fold.bytes(b"hello ").bytes(b"world");
        assert_eq!(fold.value(), fnv1a(b"hello world"));
        let mut f2 = DigestFold::new();
        f2.f64(1.5).u64(7);
        let mut bytes = 1.5f64.to_bits().to_le_bytes().to_vec();
        bytes.extend_from_slice(&7u64.to_le_bytes());
        assert_eq!(f2.value(), fnv1a(&bytes));
    }
}
