//! Continuous telemetry: the cadence-driven loop that binds the sampler,
//! health tracker, SLO tracker, and anomaly detectors together.
//!
//! A [`Telemetry`] handle lives on every [`Obs`](crate::ctx::Obs) but stays
//! disabled (and free) until [`Telemetry::enable`] installs a
//! [`TelemetryConfig`]. Once enabled, instrumented layers call
//! [`telemetry_tick`](crate::ctx::telemetry_tick) with the current virtual
//! time — the monitor runtime does so after every daemon tick, the broker
//! after every scheduling cycle — and the telemetry loop gates itself on
//! the configured cadence, so the call is safe to make as often as wanted.
//!
//! Each due tick runs, in order: health derivation (reads raw gauges,
//! writes `health_*` gauges), SLO evaluation (journals
//! [`SloBreached`](crate::journal::EventKind::SloBreached) edges), anomaly
//! detection (journals
//! [`AnomalyDetected`](crate::journal::EventKind::AnomalyDetected) edges and
//! bumps `anomaly_total` counters), and finally the time-series sampler —
//! last, so freshly derived `health_*` gauges are captured the same tick.
//! Wall-clock nanoseconds spent inside ticks are accumulated so reports can
//! pin the always-on overhead.

use crate::anomaly::{Anomaly, DetectorSet};
use crate::health::{HealthSnapshot, HealthTracker};
use crate::journal::{EventKind, Journal, Severity};
use crate::json;
use crate::lock;
use crate::metrics::Metrics;
use crate::recorder::{EvidenceSnapshot, Recorder, EVIDENCE_TAIL};
use crate::slo::{Objective, Slo, SloTracker};
use crate::span::{SpanStore, TraceId};
use crate::timeseries::Sampler;
use nlrm_sim_core::time::{Duration, SimTime};
use std::sync::{Arc, Mutex};

/// Keep at most this many fired anomalies in memory.
const MAX_ANOMALIES: usize = 1024;

/// Configuration for one telemetry loop.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Virtual-time cadence between telemetry ticks.
    pub cadence: Duration,
    /// Ring capacity (points per series) for the sampler.
    pub series_capacity: usize,
    /// Declared SLOs.
    pub slos: Vec<Slo>,
    /// Counters sampled as per-tick deltas.
    pub counters: Vec<String>,
    /// Gauges sampled by value.
    pub gauges: Vec<String>,
    /// `(histogram, quantile)` pairs sampled each tick.
    pub quantiles: Vec<(String, f64)>,
}

impl TelemetryConfig {
    /// The standard preset over the conventional metric names the monitor,
    /// loads, and broker layers publish: 30 s cadence, 256-point rings, the
    /// three stock SLOs (queue-wait p99, decision-latency p99, shed-rate
    /// ceiling), and the signals the health tracker derives from.
    pub fn standard() -> TelemetryConfig {
        TelemetryConfig {
            cadence: Duration::from_secs(30),
            series_capacity: 256,
            slos: vec![
                Slo::new(
                    "queue_wait_p99",
                    Objective::QuantileAtMost {
                        histogram: "broker_job_wait_secs".into(),
                        q: 0.99,
                        max: 900.0,
                    },
                    0.95,
                    64,
                ),
                Slo::new(
                    "decision_latency_p99",
                    Objective::QuantileAtMost {
                        histogram: "alloc_decision_seconds".into(),
                        q: 0.99,
                        max: 1.0,
                    },
                    0.99,
                    64,
                ),
                Slo::new(
                    "shed_rate",
                    Objective::RateAtMost {
                        counter: "broker_jobs_shed_total".into(),
                        max_per_sec: 0.05,
                    },
                    0.99,
                    64,
                ),
            ],
            counters: vec![
                "monitor_pair_measurements_total".into(),
                "monitor_probe_bytes_total".into(),
                "store_publish_total".into(),
                "store_publish_bytes_total".into(),
                "loads_derive_total".into(),
                "loads_stale_node_excluded_total".into(),
            ],
            gauges: vec![
                "health_utilization".into(),
                "health_fragmentation".into(),
                "health_stale_fraction".into(),
                "broker_queue_depth".into(),
                "broker_oldest_wait_secs".into(),
                "cluster_mean_cpu_load".into(),
                "monitor_round_pairs".into(),
                "monitor_round_bytes".into(),
            ],
            quantiles: vec![
                ("broker_job_wait_secs".into(), 0.99),
                ("alloc_decision_seconds".into(), 0.99),
            ],
        }
    }
}

#[derive(Debug)]
struct TelemetryInner {
    cadence: Duration,
    last_tick: Option<SimTime>,
    sampler: Sampler,
    health: HealthTracker,
    slo: SloTracker,
    detectors: DetectorSet,
    anomalies: Vec<Anomaly>,
    anomalies_dropped: u64,
    ticks: u64,
    wall_nanos: u64,
}

/// The telemetry loop handle carried by [`Obs`](crate::ctx::Obs). Cheap to
/// clone; disabled (every call a no-op) until [`Telemetry::enable`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Option<TelemetryInner>>>,
}

impl Telemetry {
    /// A disabled handle (the default on every `Obs`).
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Install `config` and start ticking. Replaces any previous state.
    pub fn enable(&self, config: TelemetryConfig) {
        let mut sampler = Sampler::new(config.cadence, config.series_capacity);
        for c in &config.counters {
            sampler.track_counter(c);
        }
        for g in &config.gauges {
            sampler.track_gauge(g);
        }
        for (h, q) in &config.quantiles {
            sampler.track_quantile(h, *q);
        }
        let mut slo = SloTracker::new();
        for s in config.slos {
            slo.add(s);
        }
        *lock::lock(&self.inner) = Some(TelemetryInner {
            cadence: config.cadence,
            last_tick: None,
            sampler,
            health: HealthTracker::new(),
            slo,
            detectors: DetectorSet::new(),
            anomalies: Vec::new(),
            anomalies_dropped: 0,
            ticks: 0,
            wall_nanos: 0,
        });
    }

    /// True once [`Telemetry::enable`] has run.
    pub fn is_enabled(&self) -> bool {
        lock::lock(&self.inner).is_some()
    }

    /// Run one telemetry tick at `now` if the cadence has elapsed; no-op
    /// while disabled. Safe to call on every event-loop iteration.
    ///
    /// `spans` supplies the active traces stamped onto breach/anomaly
    /// events; `recorder` (when enabled) gets an [`EvidenceSnapshot`]
    /// frozen at each rising edge.
    pub fn tick(
        &self,
        now: SimTime,
        metrics: &Metrics,
        journal: &Journal,
        spans: &SpanStore,
        recorder: &Recorder,
    ) {
        let mut guard = lock::lock(&self.inner);
        let Some(inner) = guard.as_mut() else {
            return;
        };
        if let Some(last) = inner.last_tick {
            if now.since(last) < inner.cadence {
                return;
            }
        }
        let started = std::time::Instant::now();
        inner.last_tick = Some(now);
        inner.ticks += 1;
        let snap = inner.health.observe(now, metrics);
        // active traces are only needed on edges; compute at most once
        let mut active: Option<Vec<TraceId>> = None;
        let mut edges: Vec<String> = Vec::new();
        for breach in inner.slo.evaluate(now, metrics) {
            let traces = active.get_or_insert_with(|| spans.active_traces()).clone();
            edges.push(format!("slo:{}", breach.slo));
            journal.record(
                Severity::Warn,
                now,
                EventKind::SloBreached {
                    slo: breach.slo,
                    attainment: breach.attainment,
                    target: breach.target,
                    metric: breach.metric,
                    traces,
                },
            );
            metrics.inc("slo_breach_total");
        }
        for anomaly in inner.detectors.observe(&snap) {
            let traces = active.get_or_insert_with(|| spans.active_traces()).clone();
            edges.push(format!("anomaly:{}", anomaly.kind.label()));
            journal.record(
                Severity::Warn,
                now,
                EventKind::AnomalyDetected {
                    detector: anomaly.kind.label().to_string(),
                    value: anomaly.value,
                    threshold: anomaly.threshold,
                    metric: anomaly.kind.metric_key().to_string(),
                    traces,
                },
            );
            metrics.inc("anomaly_total");
            metrics.inc(&format!("anomaly_total_{}", anomaly.kind.label()));
            if inner.anomalies.len() < MAX_ANOMALIES {
                inner.anomalies.push(anomaly);
            } else {
                inner.anomalies_dropped += 1;
            }
        }
        // each rising edge freezes the evidence the RCA walk (and a human
        // postmortem) will want, before the ring can evict it (the accepts
        // guard keeps trigger seqs honest if a severity floor filtered the
        // edge events out of the journal entirely)
        if !edges.is_empty() && recorder.is_enabled() && journal.accepts(Severity::Warn) {
            let tail: Vec<String> = journal
                .tail(EVIDENCE_TAIL)
                .iter()
                .map(crate::journal::Event::render)
                .collect();
            let health_json = inner
                .health
                .latest()
                .map_or("null".into(), HealthSnapshot::to_json);
            let active_traces: Vec<u64> = active.unwrap_or_default().iter().map(|t| t.0).collect();
            // the edge events were just recorded, in `edges` order, as the
            // newest journal entries
            let last_seq = journal.total_recorded();
            let first_seq = last_seq - edges.len() as u64;
            for (i, trigger) in edges.into_iter().enumerate() {
                recorder.snapshot_evidence(EvidenceSnapshot {
                    at: now,
                    trigger,
                    trigger_seq: first_seq + i as u64,
                    tail: tail.clone(),
                    active_traces: active_traces.clone(),
                    health_json: health_json.clone(),
                });
            }
        }
        inner.sampler.sample(now, metrics);
        inner.wall_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Telemetry ticks actually taken (cadence-gated).
    pub fn ticks(&self) -> u64 {
        lock::lock(&self.inner).as_ref().map_or(0, |i| i.ticks)
    }

    /// Wall-clock nanoseconds spent inside ticks — the always-on cost.
    pub fn wall_nanos(&self) -> u64 {
        lock::lock(&self.inner).as_ref().map_or(0, |i| i.wall_nanos)
    }

    /// Every anomaly fired so far (bounded; see `anomalies_dropped` in the
    /// JSON export).
    pub fn anomalies(&self) -> Vec<Anomaly> {
        lock::lock(&self.inner)
            .as_ref()
            .map_or_else(Vec::new, |i| i.anomalies.clone())
    }

    /// The most recent derived health snapshot, if any tick has run.
    pub fn latest_health(&self) -> Option<HealthSnapshot> {
        lock::lock(&self.inner)
            .as_ref()
            .and_then(|i| i.health.latest().cloned())
    }

    /// Latest SLO statuses as a JSON array (empty while disabled).
    pub fn slo_json(&self) -> String {
        lock::lock(&self.inner)
            .as_ref()
            .map_or_else(|| "[]".to_string(), |i| i.slo.to_json())
    }

    /// Full telemetry state as one JSON object: tick/overhead counters, the
    /// latest health snapshot, SLO statuses, fired anomalies, and every
    /// sampled series.
    pub fn to_json(&self) -> String {
        let guard = lock::lock(&self.inner);
        let Some(inner) = guard.as_ref() else {
            return json::object(&[("enabled", "false".to_string())]);
        };
        let anomalies: Vec<String> = inner.anomalies.iter().map(Anomaly::to_json).collect();
        json::object(&[
            ("enabled", "true".to_string()),
            ("ticks", inner.ticks.to_string()),
            ("wall_nanos", inner.wall_nanos.to_string()),
            ("cadence_s", json::num(inner.cadence.as_secs_f64())),
            (
                "health",
                inner
                    .health
                    .latest()
                    .map_or("null".into(), HealthSnapshot::to_json),
            ),
            ("slos", inner.slo.to_json()),
            ("anomalies", json::array(&anomalies)),
            ("anomalies_dropped", inner.anomalies_dropped.to_string()),
            ("series", inner.sampler.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RecordHeader;

    fn quiet() -> (SpanStore, Recorder) {
        (SpanStore::default(), Recorder::new())
    }

    #[test]
    fn disabled_telemetry_is_a_no_op() {
        let t = Telemetry::new();
        let m = Metrics::new();
        let j = Journal::new(16);
        let (s, r) = quiet();
        t.tick(SimTime::from_secs(1), &m, &j, &s, &r);
        assert!(!t.is_enabled());
        assert_eq!(t.ticks(), 0);
        assert!(json::validate(&t.to_json()).is_ok());
    }

    #[test]
    fn cadence_gates_ticks() {
        let t = Telemetry::new();
        t.enable(TelemetryConfig::standard());
        let m = Metrics::new();
        let j = Journal::new(16);
        let (s, r) = quiet();
        // 10 calls over 100 s at a 30 s cadence → ticks at 10, 40, 70, 100
        for i in 1..=10 {
            t.tick(SimTime::from_secs(i * 10), &m, &j, &s, &r);
        }
        assert_eq!(t.ticks(), 4);
    }

    #[test]
    fn staleness_anomaly_reaches_journal_and_counters() {
        let t = Telemetry::new();
        t.enable(TelemetryConfig::standard());
        let m = Metrics::new();
        let j = Journal::new(64);
        let (s, r) = quiet();
        m.set("loads_stale_fraction", 0.25);
        t.tick(SimTime::from_secs(30), &m, &j, &s, &r);
        assert_eq!(j.count_of("anomaly_detected"), 1);
        assert_eq!(m.counter_value("anomaly_total"), 1);
        assert_eq!(m.counter_value("anomaly_total_staleness_surge"), 1);
        assert_eq!(t.anomalies().len(), 1);
    }

    #[test]
    fn clean_registry_fires_nothing_over_a_long_run() {
        let t = Telemetry::new();
        t.enable(TelemetryConfig::standard());
        let m = Metrics::new();
        let j = Journal::new(64);
        let (s, r) = quiet();
        m.set("broker_total_capacity", 64.0);
        m.set("broker_free_procs", 32.0);
        m.set("cluster_mean_cpu_load", 1.0);
        m.set("monitor_round_pairs", 28.0);
        for i in 1..=200u64 {
            t.tick(SimTime::from_secs(i * 30), &m, &j, &s, &r);
        }
        assert_eq!(t.anomalies().len(), 0, "{:?}", t.anomalies());
        assert_eq!(j.count_of("anomaly_detected"), 0);
        assert_eq!(j.count_of("slo_breached"), 0);
    }

    #[test]
    fn sampler_captures_derived_health_gauges_same_tick() {
        let t = Telemetry::new();
        t.enable(TelemetryConfig::standard());
        let m = Metrics::new();
        let j = Journal::new(16);
        let (s, r) = quiet();
        m.set("broker_total_capacity", 64.0);
        m.set("broker_free_procs", 16.0);
        t.tick(SimTime::from_secs(30), &m, &j, &s, &r);
        let js = t.to_json();
        assert!(json::validate(&js).is_ok());
        // health_utilization was derived this tick and sampled this tick
        assert!(js.contains("\"health_utilization\""));
        let health = t.latest_health().unwrap();
        assert!((health.utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn anomaly_events_carry_metric_and_active_traces() {
        let t = Telemetry::new();
        t.enable(TelemetryConfig::standard());
        let m = Metrics::new();
        let j = Journal::new(64);
        let spans = SpanStore::default();
        let r = Recorder::new();
        // one job in flight, plus system activity that must not leak in
        spans
            .start(TraceId::for_job(9), None, "job", "broker", SimTime::ZERO)
            .unwrap();
        spans
            .start(TraceId::SYSTEM, None, "tick", "monitor", SimTime::ZERO)
            .unwrap();
        m.set("loads_stale_fraction", 0.25);
        t.tick(SimTime::from_secs(30), &m, &j, &spans, &r);
        let events = j.events_of("anomaly_detected");
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::AnomalyDetected { metric, traces, .. } => {
                assert_eq!(metric, "loads_stale_fraction");
                assert_eq!(traces, &vec![TraceId::for_job(9)]);
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn rising_edges_freeze_evidence_in_the_recorder() {
        let t = Telemetry::new();
        t.enable(TelemetryConfig::standard());
        let m = Metrics::new();
        let j = Journal::new(64);
        let spans = SpanStore::default();
        let r = Recorder::new();
        r.enable(RecordHeader::default());
        m.set("broker_total_capacity", 64.0);
        m.set("broker_free_procs", 32.0);
        // a clean tick leaves no evidence…
        t.tick(SimTime::from_secs(30), &m, &j, &spans, &r);
        assert!(r.evidence().is_empty());
        // …then a staleness edge freezes one snapshot
        m.set("loads_stale_fraction", 0.25);
        t.tick(SimTime::from_secs(60), &m, &j, &spans, &r);
        let evidence = r.evidence();
        assert_eq!(evidence.len(), 1);
        let snap = &evidence[0];
        assert_eq!(snap.trigger, "anomaly:staleness_surge");
        assert_eq!(snap.at, SimTime::from_secs(60));
        // the trigger_seq points exactly at the journaled edge event
        let edge = &j.events_of("anomaly_detected")[0];
        assert_eq!(snap.trigger_seq, edge.seq);
        assert!(snap.tail.iter().any(|l| l.contains("anomaly_detected")));
        assert!(snap.health_json.contains("utilization"));
        // sustained condition: no new edge, no new evidence
        t.tick(SimTime::from_secs(90), &m, &j, &spans, &r);
        assert_eq!(r.evidence().len(), 1);
    }
}
