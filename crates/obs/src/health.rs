//! Derived cluster-health snapshots.
//!
//! [`HealthTracker::observe`] reads the raw gauges and histograms the
//! monitor, load-derivation, and broker layers publish into the metrics
//! registry and folds them into one [`HealthSnapshot`] per telemetry tick:
//! node utilization, allocation fragmentation, queue pressure by priority
//! class, stale-sample fraction, and monitor traffic per round. The derived
//! values are written back into the registry as `health_*` gauges so the
//! existing JSON and Prometheus exporters carry them with no extra wiring.

use crate::json;
use crate::metrics::Metrics;
use nlrm_sim_core::time::SimTime;

/// Names of the priority classes, indexing the per-class queue gauges.
pub const CLASS_NAMES: [&str; 3] = ["batch", "normal", "urgent"];

/// One derived health snapshot at a telemetry tick.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Virtual time of the tick.
    pub at: SimTime,
    /// Fraction of total process capacity currently reserved, in `[0, 1]`.
    pub utilization: f64,
    /// `1 - largest_free_block / free_procs`: 0 when all free capacity sits
    /// on one node, →1 as it shatters across many. 0 when nothing is free.
    pub fragmentation: f64,
    /// Jobs waiting in the broker queue.
    pub queue_depth: u64,
    /// Queue depth by priority class (`[batch, normal, urgent]`).
    pub queue_by_class: [u64; 3],
    /// Longest wait among currently queued jobs, in seconds.
    pub oldest_wait_secs: f64,
    /// p99 of completed queue waits, once any job has started.
    pub wait_p99_secs: Option<f64>,
    /// Fraction of monitored nodes excluded as stale at the last load
    /// derivation, in `[0, 1]`.
    pub stale_fraction: f64,
    /// Mean windowed CPU load over usable nodes at the last derivation.
    pub mean_cpu_load: f64,
    /// Pair measurements taken by the last monitor sweep.
    pub round_pairs: u64,
    /// Bytes moved (probes + published rows) by the last monitor sweep.
    pub round_bytes: u64,
    /// Bytes moved by the last gossip dissemination round (0 under central
    /// monitoring, which has no gossip layer). Kept separate from
    /// `round_bytes` so relayed summaries are never double-counted as
    /// sweep traffic.
    pub gossip_round_bytes: u64,
}

impl HealthSnapshot {
    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        let classes: Vec<(&str, String)> = CLASS_NAMES
            .iter()
            .zip(self.queue_by_class)
            .map(|(n, c)| (*n, c.to_string()))
            .collect();
        json::object(&[
            ("at_s", json::num(self.at.as_secs_f64())),
            ("utilization", json::num(self.utilization)),
            ("fragmentation", json::num(self.fragmentation)),
            ("queue_depth", self.queue_depth.to_string()),
            ("queue_by_class", json::object(&classes)),
            ("oldest_wait_secs", json::num(self.oldest_wait_secs)),
            (
                "wait_p99_secs",
                self.wait_p99_secs.map_or("null".into(), json::num),
            ),
            ("stale_fraction", json::num(self.stale_fraction)),
            ("mean_cpu_load", json::num(self.mean_cpu_load)),
            ("round_pairs", self.round_pairs.to_string()),
            ("round_bytes", self.round_bytes.to_string()),
            ("gossip_round_bytes", self.gossip_round_bytes.to_string()),
        ])
    }
}

/// Folds raw per-layer metrics into [`HealthSnapshot`]s.
#[derive(Debug, Clone, Default)]
pub struct HealthTracker {
    latest: Option<HealthSnapshot>,
    observed: u64,
}

impl HealthTracker {
    /// A tracker with no snapshots yet.
    pub fn new() -> HealthTracker {
        HealthTracker::default()
    }

    /// Derive one snapshot from the registry at `now` and mirror it back as
    /// `health_*` gauges.
    pub fn observe(&mut self, now: SimTime, metrics: &Metrics) -> HealthSnapshot {
        let capacity = metrics.gauge_value("broker_total_capacity");
        let free = metrics.gauge_value("broker_free_procs");
        let largest_free = metrics.gauge_value("broker_largest_free_block");
        let utilization = if capacity > 0.0 {
            (1.0 - free / capacity).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let fragmentation = if free > 0.0 {
            (1.0 - largest_free / free).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let queue_by_class = [
            metrics.gauge_value("broker_queue_depth_batch") as u64,
            metrics.gauge_value("broker_queue_depth_normal") as u64,
            metrics.gauge_value("broker_queue_depth_urgent") as u64,
        ];
        let snap = HealthSnapshot {
            at: now,
            utilization,
            fragmentation,
            queue_depth: metrics.gauge_value("broker_queue_depth") as u64,
            queue_by_class,
            oldest_wait_secs: metrics.gauge_value("broker_oldest_wait_secs"),
            wait_p99_secs: metrics
                .histogram_snapshot("broker_job_wait_secs")
                .and_then(|h| h.quantile(0.99)),
            stale_fraction: metrics.gauge_value("loads_stale_fraction"),
            mean_cpu_load: metrics.gauge_value("cluster_mean_cpu_load"),
            round_pairs: metrics.gauge_value("monitor_round_pairs") as u64,
            round_bytes: metrics.gauge_value("monitor_round_bytes") as u64,
            gossip_round_bytes: metrics.gauge_value("monitor_gossip_round_bytes") as u64,
        };
        metrics.set("health_utilization", snap.utilization);
        metrics.set("health_fragmentation", snap.fragmentation);
        metrics.set("health_stale_fraction", snap.stale_fraction);
        metrics.set("health_oldest_wait_secs", snap.oldest_wait_secs);
        if let Some(p99) = snap.wait_p99_secs {
            metrics.set("health_wait_p99_secs", p99);
        }
        self.observed += 1;
        self.latest = Some(snap.clone());
        snap
    }

    /// The most recent snapshot, if any tick has run.
    pub fn latest(&self) -> Option<&HealthSnapshot> {
        self.latest.as_ref()
    }

    /// Number of snapshots taken.
    pub fn observed(&self) -> u64 {
        self.observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_utilization_and_fragmentation() {
        let m = Metrics::new();
        m.set("broker_total_capacity", 64.0);
        m.set("broker_free_procs", 16.0);
        m.set("broker_largest_free_block", 8.0);
        let mut t = HealthTracker::new();
        let s = t.observe(SimTime::from_secs(100), &m);
        assert!((s.utilization - 0.75).abs() < 1e-12);
        assert!((s.fragmentation - 0.5).abs() < 1e-12);
        // mirrored back into the registry for the exporters
        assert!((m.gauge_value("health_utilization") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_registry_yields_zeros_not_nans() {
        let m = Metrics::new();
        let s = HealthTracker::new().observe(SimTime::ZERO, &m);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.fragmentation, 0.0);
        assert_eq!(s.wait_p99_secs, None);
        assert!(json::validate(&s.to_json()).is_ok());
    }

    #[test]
    fn gossip_round_bytes_is_carried_separately_from_sweep_bytes() {
        let m = Metrics::new();
        m.set("monitor_round_bytes", 4096.0);
        m.set("monitor_gossip_round_bytes", 512.0);
        let s = HealthTracker::new().observe(SimTime::ZERO, &m);
        assert_eq!(s.round_bytes, 4096);
        assert_eq!(s.gossip_round_bytes, 512);
        assert!(s.to_json().contains("\"gossip_round_bytes\":512"));
    }

    #[test]
    fn queue_pressure_by_class_is_carried() {
        let m = Metrics::new();
        m.set("broker_queue_depth", 5.0);
        m.set("broker_queue_depth_batch", 3.0);
        m.set("broker_queue_depth_urgent", 2.0);
        m.set("broker_oldest_wait_secs", 700.0);
        let s = HealthTracker::new().observe(SimTime::ZERO, &m);
        assert_eq!(s.queue_depth, 5);
        assert_eq!(s.queue_by_class, [3, 0, 2]);
        assert_eq!(s.oldest_wait_secs, 700.0);
    }
}
