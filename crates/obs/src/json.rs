//! Minimal JSON formatting helpers.
//!
//! The workspace's vendored `serde` is a no-op API shim, so every exporter
//! in the tree hand-rolls its JSON. These helpers keep that output *valid*:
//! proper string escaping and finite-number formatting in one place.

/// Escape `s` into a JSON string literal, including the surrounding quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON value: finite numbers as-is, NaN/∞ as `null`
/// (JSON has no non-finite literals).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // trim the noise: integers print without a fraction
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Join already-encoded JSON values into an array literal.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Join `(key, already-encoded value)` pairs into an object literal.
pub fn object(pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{}:{}", string(k), v))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Maximum container nesting [`validate`] accepts, guarding its recursion.
const MAX_DEPTH: usize = 256;

/// Check that `s` is exactly one well-formed JSON value (RFC 8259 grammar:
/// objects, arrays, strings with escapes, numbers, `true`/`false`/`null`).
///
/// The hand-rolled exporters in this workspace assemble JSON by string
/// concatenation; this recursive-descent checker is how tests prove the
/// output would survive a real parser without vendoring one.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("expected '{word}' at byte {}", self.i))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.container(depth, b'}', true),
            Some(b'[') => self.container(depth, b']', false),
            Some(b'"') => self.string_value(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.i)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    /// Parse `{...}` (`keyed`) or `[...]` — both are comma-separated lists
    /// differing only in the `"key":` prefix per element.
    fn container(&mut self, depth: usize, close: u8, keyed: bool) -> Result<(), String> {
        self.i += 1; // opening bracket, dispatched on by value()
        self.skip_ws();
        if self.peek() == Some(close) {
            self.i += 1;
            return Ok(());
        }
        loop {
            if keyed {
                self.string_value()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
            }
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.i += 1;
                    self.skip_ws();
                }
                Some(c) if c == close => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or container end at byte {}", self.i)),
            }
        }
    }

    fn string_value(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(format!("bad \\u escape at byte {}", self.i)),
                                }
                            }
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.i));
                }
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => self.digits(),
            _ => return Err(format!("bad number at byte {}", self.i)),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(format!("bad fraction at byte {}", self.i));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(format!("bad exponent at byte {}", self.i));
            }
            self.digits();
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.25), "3.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn composites_assemble() {
        let obj = object(&[("a", num(1.0)), ("b", string("x"))]);
        assert_eq!(obj, "{\"a\":1,\"b\":\"x\"}");
        assert_eq!(array(&[num(1.0), num(2.0)]), "[1,2]");
    }

    #[test]
    fn validate_accepts_well_formed_json() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "[0.25, 1e9, \"\\\\\"]",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "01",
            "1.",
            "1e",
            "nul",
            "\"unterminated",
            "\"bad\\escape\"",
            "\"ctrl\u{1}\"",
            "[1] extra",
            "'single'",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn validate_bounds_nesting_depth() {
        let deep_ok = format!("{}0{}", "[".repeat(200), "]".repeat(200));
        validate(&deep_ok).unwrap();
        let too_deep = format!("{}0{}", "[".repeat(300), "]".repeat(300));
        assert!(validate(&too_deep).is_err());
    }

    #[test]
    fn own_helpers_produce_valid_json() {
        let doc = object(&[
            ("text", string("weird \"stuff\"\n\t\u{1}")),
            ("nums", array(&[num(1.5), num(f64::NAN), num(-3.0)])),
            ("nested", object(&[("empty", array(&[]))])),
        ]);
        validate(&doc).unwrap();
    }
}
