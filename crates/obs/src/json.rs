//! Minimal JSON formatting helpers.
//!
//! The workspace's vendored `serde` is a no-op API shim, so every exporter
//! in the tree hand-rolls its JSON. These helpers keep that output *valid*:
//! proper string escaping and finite-number formatting in one place.

/// Escape `s` into a JSON string literal, including the surrounding quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a JSON value: finite numbers as-is, NaN/∞ as `null`
/// (JSON has no non-finite literals).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // trim the noise: integers print without a fraction
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// Join already-encoded JSON values into an array literal.
pub fn array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Join `(key, already-encoded value)` pairs into an object literal.
pub fn object(pairs: &[(&str, String)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{}:{}", string(k), v))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.25), "3.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn composites_assemble() {
        let obj = object(&[("a", num(1.0)), ("b", string("x"))]);
        assert_eq!(obj, "{\"a\":1,\"b\":\"x\"}");
        assert_eq!(array(&[num(1.0), num(2.0)]), "[1,2]");
    }
}
