//! Causal span tracing over virtual time.
//!
//! A [`Span`] is a named interval of **virtual time** ([`SimTime`]) with a
//! parent link, so the spans of one [`TraceId`] form a tree: the per-job
//! story of where its time went between submission, monitor-data readiness,
//! allocation scoring, placement, and MPI execution. Spans live in a
//! [`SpanStore`] (a cheap clonable handle on [`Obs`](crate::Obs)), recorded
//! through the thread-local [`ctx`](crate::ctx) free functions so
//! instrumentation stays a no-op when no observer is installed.
//!
//! Invariants the store enforces regardless of caller discipline:
//!
//! * a child's interval always nests inside its parent's — starts are
//!   clamped at open time, and ending a span clamps (and auto-ends) every
//!   descendant into the closed interval;
//! * memory is bounded: past [`SpanStore::capacity`] new spans are counted
//!   as dropped instead of recorded.
//!
//! On top of the tree, [`SpanStore::critical_path`] extracts the child
//! chain that dominated a trace's end-to-end latency (parallel siblings
//! lose to the one that gated completion), with exact-in-microseconds time
//! attribution per span kind. Exports: Chrome trace-event JSON (loadable in
//! Perfetto; `pid`/`tid` mapped from each span's [`Span::track`]) and an
//! indented text tree.

use crate::json;
use crate::lock;
use nlrm_sim_core::time::{Duration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// First trace id handed out by [`SpanStore::new_trace`], leaving the range
/// below for externally derived ids ([`TraceId::for_job`], system traces).
const TRACE_AUTO_BASE: u64 = 1 << 32;

/// Identifies one trace: a tree of spans telling one job's (or the
/// monitor's) story.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The system trace: monitor daemon ticks and other per-run background
    /// spans that belong to no particular job.
    pub const SYSTEM: TraceId = TraceId(0);

    /// Deterministic trace id for a broker job id — stable across runs and
    /// computable without an observer installed.
    pub fn for_job(job: u64) -> TraceId {
        TraceId(job + 1)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Identifies one span within a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One named interval of virtual time in a trace tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The trace this span belongs to (inherited from the parent).
    pub trace: TraceId,
    /// This span's id (creation-ordered within the store).
    pub id: SpanId,
    /// Causal parent, if any.
    pub parent: Option<SpanId>,
    /// Span kind (`job`, `queue_wait`, `scoring`, `exec`, `compute`, …) —
    /// the unit of critical-path time attribution.
    pub kind: String,
    /// Where it ran, as `process/thread` (the second part optional):
    /// `broker/queue`, `node:n3/nodestate`, `mpi:md16-0/rank5`. Mapped to
    /// `pid`/`tid` in the Chrome export.
    pub track: String,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual end time; `None` while the span is open.
    pub end: Option<SimTime>,
    /// Free-form key/value attributes.
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Span length; zero while the span is still open.
    pub fn duration(&self) -> Duration {
        self.end.map_or(Duration::ZERO, |e| e - self.start)
    }

    /// Is the span still open?
    pub fn is_open(&self) -> bool {
        self.end.is_none()
    }
}

#[derive(Debug, Default)]
struct Inner {
    capacity: usize,
    next_span: u64,
    next_trace: u64,
    /// All spans, keyed (and creation-ordered) by raw id.
    spans: BTreeMap<u64, Span>,
    /// Direct children per raw span id.
    children: BTreeMap<u64, Vec<u64>>,
    open: usize,
    dropped: u64,
}

/// Bounded store of trace spans (cheap clonable handle).
#[derive(Debug, Clone)]
pub struct SpanStore {
    inner: Arc<Mutex<Inner>>,
}

impl Default for SpanStore {
    /// A store retaining at most 64 Ki spans.
    fn default() -> Self {
        SpanStore::new(64 * 1024)
    }
}

impl SpanStore {
    /// A store retaining at most `capacity` spans; further spans are
    /// counted as dropped. Capacity 0 is clamped to 1.
    pub fn new(capacity: usize) -> Self {
        SpanStore {
            inner: Arc::new(Mutex::new(Inner {
                capacity: capacity.max(1),
                next_trace: TRACE_AUTO_BASE,
                ..Inner::default()
            })),
        }
    }

    /// Allocate a fresh trace id (disjoint from [`TraceId::for_job`] ids).
    pub fn new_trace(&self) -> TraceId {
        let mut inner = lock::lock(&self.inner);
        let id = inner.next_trace;
        inner.next_trace += 1;
        TraceId(id)
    }

    /// Open a span at virtual time `at`. Returns `None` when the store is
    /// full or `parent` is unknown. With a parent, the span joins the
    /// parent's trace and its start is clamped into the parent's interval.
    pub fn start(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        kind: &str,
        track: &str,
        at: SimTime,
    ) -> Option<SpanId> {
        self.start_kv(trace, parent, kind, track, at, Vec::new())
    }

    /// [`SpanStore::start`] with initial attributes.
    pub fn start_kv(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        kind: &str,
        track: &str,
        at: SimTime,
        attrs: Vec<(String, String)>,
    ) -> Option<SpanId> {
        let mut inner = lock::lock(&self.inner);
        if inner.spans.len() >= inner.capacity {
            inner.dropped += 1;
            return None;
        }
        let mut trace = trace;
        let mut start = at;
        if let Some(p) = parent {
            let Some(ps) = inner.spans.get(&p.0) else {
                inner.dropped += 1;
                return None;
            };
            trace = ps.trace;
            start = start.max(ps.start);
            if let Some(pe) = ps.end {
                start = start.min(pe);
            }
        }
        let id = SpanId(inner.next_span);
        inner.next_span += 1;
        inner.spans.insert(
            id.0,
            Span {
                trace,
                id,
                parent,
                kind: kind.to_string(),
                track: track.to_string(),
                start,
                end: None,
                attrs,
            },
        );
        inner.open += 1;
        if let Some(p) = parent {
            inner.children.entry(p.0).or_default().push(id.0);
        }
        Some(id)
    }

    /// Close a span at virtual time `at`. The end is clamped to not precede
    /// the span's own start nor exceed an already-finished parent's end,
    /// and every descendant is clamped (auto-ending still-open ones) into
    /// the closed interval, so child spans can never stick out of their
    /// parent. Returns `false` for unknown or already-closed spans.
    pub fn end(&self, id: SpanId, at: SimTime) -> bool {
        let mut inner = lock::lock(&self.inner);
        let inner = &mut *inner;
        let Some(span) = inner.spans.get(&id.0) else {
            return false;
        };
        if span.end.is_some() {
            return false;
        }
        let mut at = at.max(span.start);
        if let Some(pe) = span
            .parent
            .and_then(|p| inner.spans.get(&p.0))
            .and_then(|p| p.end)
        {
            // start() clamped our start to <= pe, so this keeps at >= start
            at = at.min(pe);
        }
        inner.spans.get_mut(&id.0).expect("present above").end = Some(at);
        inner.open -= 1;
        // Clamp the whole subtree into [span.start, at]. The bound tightens
        // as the walk descends: a child opened under an already-closed
        // parent must land inside that parent's (possibly earlier) end, not
        // merely inside the span being closed now.
        let mut stack: Vec<(u64, SimTime)> = inner
            .children
            .get(&id.0)
            .into_iter()
            .flatten()
            .map(|&c| (c, at))
            .collect();
        while let Some((c, bound)) = stack.pop() {
            let s = inner.spans.get_mut(&c).expect("child recorded");
            if s.start > bound {
                s.start = bound;
            }
            match s.end {
                None => {
                    s.end = Some(bound);
                    inner.open -= 1;
                }
                Some(e) if e > bound => s.end = Some(bound),
                _ => {}
            }
            let child_bound = s.end.expect("set above");
            stack.extend(
                inner
                    .children
                    .get(&c)
                    .into_iter()
                    .flatten()
                    .map(|&g| (g, child_bound)),
            );
        }
        true
    }

    /// Record an already-finished span in one call (used for intervals
    /// whose bounds are both known, e.g. queue wait at grant time).
    #[allow(clippy::too_many_arguments)] // mirrors start_kv + the end stamp
    pub fn closed(
        &self,
        trace: TraceId,
        parent: Option<SpanId>,
        kind: &str,
        track: &str,
        start: SimTime,
        end: SimTime,
        attrs: Vec<(String, String)>,
    ) -> Option<SpanId> {
        let id = self.start_kv(trace, parent, kind, track, start, attrs)?;
        self.end(id, end);
        Some(id)
    }

    /// Append an attribute to an existing span.
    pub fn annotate(&self, id: SpanId, key: &str, value: impl Into<String>) {
        if let Some(s) = lock::lock(&self.inner).spans.get_mut(&id.0) {
            s.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        lock::lock(&self.inner).spans.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of spans still open.
    pub fn open_count(&self) -> usize {
        lock::lock(&self.inner).open
    }

    /// Spans rejected because the store was full (or the parent unknown).
    pub fn dropped(&self) -> u64 {
        lock::lock(&self.inner).dropped
    }

    /// Maximum number of retained spans.
    pub fn capacity(&self) -> usize {
        lock::lock(&self.inner).capacity
    }

    /// Snapshot of all spans, in creation order.
    pub fn spans(&self) -> Vec<Span> {
        lock::lock(&self.inner).spans.values().cloned().collect()
    }

    /// Snapshot of one trace's spans, in creation order.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<Span> {
        lock::lock(&self.inner)
            .spans
            .values()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Distinct trace ids present, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let inner = lock::lock(&self.inner);
        let mut ids: Vec<TraceId> = inner.spans.values().map(|s| s.trace).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Distinct non-system traces with at least one *open* span, ascending:
    /// the jobs in flight right now. Anomaly and SLO-breach events carry
    /// this set so incidents can be grepped against spans directly.
    pub fn active_traces(&self) -> Vec<TraceId> {
        let inner = lock::lock(&self.inner);
        let mut ids: Vec<TraceId> = inner
            .spans
            .values()
            .filter(|s| s.is_open() && s.trace != TraceId::SYSTEM)
            .map(|s| s.trace)
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// The trace's root: its earliest-started parentless finished span.
    pub fn root_of(&self, trace: TraceId) -> Option<Span> {
        let spans = self.trace_spans(trace);
        root_span(&spans).cloned()
    }

    /// Extract the critical path of a finished trace (open spans are
    /// ignored). See [`critical_path_of`].
    pub fn critical_path(&self, trace: TraceId) -> Option<CriticalPath> {
        critical_path_of(trace, &self.trace_spans(trace))
    }

    /// Export every finished span as Chrome trace-event JSON (open in
    /// `ui.perfetto.dev` or `chrome://tracing`). Each distinct
    /// [`Span::track`] process maps to a `pid` and each thread to a `tid`,
    /// with metadata events carrying the human names; span attributes,
    /// trace, span, and parent ids travel in `args`.
    pub fn to_chrome_json(&self) -> String {
        let spans = self.spans();
        let mut pids: BTreeMap<String, u64> = BTreeMap::new();
        let mut tids: BTreeMap<String, u64> = BTreeMap::new();
        let mut events: Vec<String> = Vec::new();
        let mut open = 0u64;
        for s in &spans {
            let Some(end) = s.end else {
                open += 1;
                continue;
            };
            let (proc_name, thread_name) = match s.track.split_once('/') {
                Some((p, t)) => (p.to_string(), t.to_string()),
                None => (s.track.clone(), s.track.clone()),
            };
            let next_pid = pids.len() as u64 + 1;
            let pid = *pids.entry(proc_name.clone()).or_insert_with(|| {
                events.push(meta_event("process_name", next_pid, None, &proc_name));
                next_pid
            });
            let next_tid = tids.len() as u64 + 1;
            let tid = *tids.entry(s.track.clone()).or_insert_with(|| {
                events.push(meta_event("thread_name", pid, Some(next_tid), &thread_name));
                next_tid
            });
            let mut args: Vec<(&str, String)> = vec![
                ("trace", json::string(&s.trace.to_string())),
                ("span", json::string(&s.id.to_string())),
            ];
            if let Some(p) = s.parent {
                args.push(("parent", json::string(&p.to_string())));
            }
            for (k, v) in &s.attrs {
                args.push((k.as_str(), json::string(v)));
            }
            events.push(json::object(&[
                ("name", json::string(&s.kind)),
                ("cat", json::string(&s.trace.to_string())),
                ("ph", json::string("X")),
                ("ts", s.start.as_micros().to_string()),
                ("dur", (end - s.start).as_micros().to_string()),
                ("pid", pid.to_string()),
                ("tid", tid.to_string()),
                ("args", json::object(&args)),
            ]));
        }
        json::object(&[
            ("traceEvents", json::array(&events)),
            ("displayTimeUnit", json::string("ms")),
            (
                "otherData",
                json::object(&[("open_spans", open.to_string())]),
            ),
        ])
    }

    /// Indented text rendering of one trace's span tree, children in start
    /// order under their parents.
    pub fn render_trace(&self, trace: TraceId) -> String {
        let spans = self.trace_spans(trace);
        let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id.0, s)).collect();
        let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
        let mut roots: Vec<&Span> = Vec::new();
        for s in &spans {
            match s.parent {
                Some(p) if by_id.contains_key(&p.0) => {
                    children.entry(p.0).or_default().push(s);
                }
                _ => roots.push(s),
            }
        }
        for v in children.values_mut() {
            v.sort_by_key(|s| (s.start, s.id.0));
        }
        roots.sort_by_key(|s| (s.start, s.id.0));
        let mut out = String::new();
        fn render(s: &Span, depth: usize, children: &BTreeMap<u64, Vec<&Span>>, out: &mut String) {
            let end = s.end.map_or("open".to_string(), |e| format!("{e}"));
            out.push_str(&format!(
                "{:indent$}{} [{} .. {}] dur={} track={}",
                "",
                s.kind,
                s.start,
                end,
                s.duration(),
                s.track,
                indent = depth * 2,
            ));
            for (k, v) in &s.attrs {
                out.push_str(&format!(" {k}={v}"));
            }
            out.push('\n');
            for c in children.get(&s.id.0).into_iter().flatten() {
                render(c, depth + 1, children, out);
            }
        }
        for r in &roots {
            render(r, 0, &children, &mut out);
        }
        out
    }
}

fn meta_event(name: &str, pid: u64, tid: Option<u64>, label: &str) -> String {
    let mut pairs: Vec<(&str, String)> = vec![
        ("name", json::string(name)),
        ("ph", json::string("M")),
        ("pid", pid.to_string()),
    ];
    if let Some(t) = tid {
        pairs.push(("tid", t.to_string()));
    }
    pairs.push(("args", json::object(&[("name", json::string(label))])));
    json::object(&pairs)
}

/// One interval of the critical path, attributed to the span that was the
/// deepest gating work during it.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSegment {
    /// The attributed span.
    pub span: SpanId,
    /// That span's kind (the attribution key).
    pub kind: String,
    /// That span's track.
    pub track: String,
    /// Segment start.
    pub start: SimTime,
    /// Segment end.
    pub end: SimTime,
}

impl PathSegment {
    /// Segment length.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// The chain of spans that gated a trace's end-to-end latency.
///
/// Segments tile the root span's interval exactly — their durations sum to
/// the trace duration to the microsecond — so per-kind attribution is a
/// partition of the job's total time, never an over- or under-count.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// The trace this path explains.
    pub trace: TraceId,
    /// The root span the walk started from.
    pub root: SpanId,
    /// Chronological, contiguous segments covering the root interval.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Total path length (equals the root span's duration).
    pub fn total(&self) -> Duration {
        self.segments
            .iter()
            .fold(Duration::ZERO, |acc, s| acc + s.duration())
    }

    /// Time attributed to each span kind, descending.
    pub fn by_kind(&self) -> Vec<(String, Duration)> {
        let mut acc: BTreeMap<&str, Duration> = BTreeMap::new();
        for s in &self.segments {
            *acc.entry(&s.kind).or_insert(Duration::ZERO) += s.duration();
        }
        let mut v: Vec<(String, Duration)> =
            acc.into_iter().map(|(k, d)| (k.to_string(), d)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Number of distinct span kinds on the path.
    pub fn kind_count(&self) -> usize {
        self.by_kind().len()
    }

    /// Export as one JSON object (`trace`, `root`, `total_s`, `by_kind`,
    /// `segments`).
    pub fn to_json(&self) -> String {
        let segments: Vec<String> = self
            .segments
            .iter()
            .map(|s| {
                json::object(&[
                    ("span", json::string(&s.span.to_string())),
                    ("kind", json::string(&s.kind)),
                    ("track", json::string(&s.track)),
                    ("start_s", json::num(s.start.as_secs_f64())),
                    ("end_s", json::num(s.end.as_secs_f64())),
                ])
            })
            .collect();
        let by_kind: Vec<String> = self
            .by_kind()
            .iter()
            .map(|(k, d)| {
                json::object(&[
                    ("kind", json::string(k)),
                    ("secs", json::num(d.as_secs_f64())),
                ])
            })
            .collect();
        json::object(&[
            ("trace", json::string(&self.trace.to_string())),
            ("root", json::string(&self.root.to_string())),
            ("total_s", json::num(self.total().as_secs_f64())),
            ("by_kind", json::array(&by_kind)),
            ("segments", json::array(&segments)),
        ])
    }
}

/// The trace's root among `spans`: earliest-started finished span whose
/// parent is absent (or not finished), ties by lowest id.
fn root_span(spans: &[Span]) -> Option<&Span> {
    let finished: BTreeMap<u64, &Span> = spans
        .iter()
        .filter(|s| s.end.is_some())
        .map(|s| (s.id.0, s))
        .collect();
    spans
        .iter()
        .filter(|s| s.end.is_some())
        .filter(|s| s.parent.is_none_or(|p| !finished.contains_key(&p.0)))
        .min_by_key(|s| (s.start, s.id.0))
}

/// Extract the critical path of `trace` from its spans (open spans are
/// ignored).
///
/// The walk runs backwards from the root's end: at each cursor it descends
/// into the child whose completion gated that moment (the latest-ending
/// child not after the cursor), attributes the gap before the cursor to the
/// current span's own work, and continues from that child's start. Parallel
/// siblings overlapped by the chosen chain never appear — only the chain
/// that determined the end-to-end latency does.
pub fn critical_path_of(trace: TraceId, spans: &[Span]) -> Option<CriticalPath> {
    let root = root_span(spans)?;
    let by_id: BTreeMap<u64, &Span> = spans
        .iter()
        .filter(|s| s.end.is_some())
        .map(|s| (s.id.0, s))
        .collect();
    let mut children: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in by_id.values() {
        if let Some(p) = s.parent {
            if by_id.contains_key(&p.0) {
                children.entry(p.0).or_default().push(s);
            }
        }
    }
    for v in children.values_mut() {
        // descending end (ties: later span first), the walk order
        v.sort_by_key(|s| (s.end.expect("finished"), s.id.0));
        v.reverse();
    }
    let mut segments = Vec::new();
    walk(root, &children, &mut segments);
    segments.reverse();
    Some(CriticalPath {
        trace,
        root: root.id,
        segments,
    })
}

/// Append `span`'s critical segments in reverse chronological order.
fn walk(span: &Span, children: &BTreeMap<u64, Vec<&Span>>, segments: &mut Vec<PathSegment>) {
    let end = span.end.expect("only finished spans are walked");
    let mut cursor = end;
    let seg = |start: SimTime, end: SimTime| PathSegment {
        span: span.id,
        kind: span.kind.clone(),
        track: span.track.clone(),
        start,
        end,
    };
    for child in children.get(&span.id.0).into_iter().flatten() {
        let cend = child.end.expect("finished");
        if cend > cursor {
            // overlapped by the already-chosen chain: not on the path
            continue;
        }
        if cend < cursor {
            segments.push(seg(cend, cursor));
        }
        walk(child, children, segments);
        cursor = child.start;
        if cursor == span.start {
            break;
        }
    }
    if cursor > span.start {
        segments.push(seg(span.start, cursor));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn spans_nest_and_finish() {
        let store = SpanStore::new(64);
        let trace = TraceId::for_job(0);
        let root = store
            .start(trace, None, "job", "broker/jobs", t(10))
            .unwrap();
        let child = store
            .start(trace, Some(root), "exec", "mpi/exec", t(12))
            .unwrap();
        assert_eq!(store.open_count(), 2);
        assert!(store.end(child, t(20)));
        assert!(store.end(root, t(25)));
        assert!(!store.end(root, t(30)), "double close rejected");
        let spans = store.trace_spans(trace);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].duration(), Duration::from_secs(15));
        assert_eq!(spans[1].parent, Some(root));
        assert_eq!(store.open_count(), 0);
    }

    #[test]
    fn child_start_is_clamped_into_parent() {
        let store = SpanStore::new(64);
        let root = store
            .start(TraceId(5), None, "job", "broker", t(100))
            .unwrap();
        // child claims to start before its parent: clamped forward
        let child = store
            .start(TraceId(5), Some(root), "queue_wait", "broker", t(40))
            .unwrap();
        let spans = store.spans();
        assert_eq!(spans[1].start, t(100));
        // child trace is inherited even if the caller passes another
        assert_eq!(spans[1].trace, TraceId(5));
        store.end(child, t(120));
        store.end(root, t(110));
        let spans = store.spans();
        assert_eq!(spans[0].end, Some(t(110)));
        assert_eq!(
            spans[1].end,
            Some(t(110)),
            "finished child clamped when parent closes earlier"
        );
    }

    #[test]
    fn ending_a_parent_auto_ends_open_descendants() {
        let store = SpanStore::new(64);
        let root = store
            .start(TraceId(1), None, "job", "broker", t(0))
            .unwrap();
        let mid = store
            .start(TraceId(1), Some(root), "exec", "mpi", t(5))
            .unwrap();
        let _leaf = store
            .start(TraceId(1), Some(mid), "compute", "mpi", t(6))
            .unwrap();
        store.end(root, t(9));
        assert_eq!(store.open_count(), 0);
        for s in store.spans() {
            assert!(s.end.unwrap() <= t(9));
            assert!(s.start <= s.end.unwrap());
        }
    }

    #[test]
    fn capacity_drops_new_spans() {
        let store = SpanStore::new(2);
        let a = store.start(TraceId(1), None, "a", "x", t(0));
        let b = store.start(TraceId(1), None, "b", "x", t(0));
        let c = store.start(TraceId(1), None, "c", "x", t(0));
        assert!(a.is_some() && b.is_some());
        assert!(c.is_none());
        assert_eq!(store.dropped(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn unknown_parent_is_rejected() {
        let store = SpanStore::new(8);
        assert!(store
            .start(TraceId(1), Some(SpanId(99)), "x", "x", t(0))
            .is_none());
        assert_eq!(store.dropped(), 1);
    }

    #[test]
    fn critical_path_picks_the_gating_chain() {
        // root [0,100]: queue_wait [0,40], then exec [40,95] whose ranks
        // run in parallel — rank1 [40,90] gates, rank0 [40,70] does not.
        let store = SpanStore::new(64);
        let trace = TraceId::for_job(7);
        let root = store
            .start(trace, None, "job", "broker/jobs", t(0))
            .unwrap();
        store
            .closed(
                trace,
                Some(root),
                "queue_wait",
                "broker/queue",
                t(0),
                t(40),
                vec![],
            )
            .unwrap();
        let exec = store
            .start(trace, Some(root), "exec", "mpi/exec", t(40))
            .unwrap();
        store
            .closed(
                trace,
                Some(exec),
                "compute",
                "mpi/rank0",
                t(40),
                t(70),
                vec![],
            )
            .unwrap();
        store
            .closed(
                trace,
                Some(exec),
                "compute",
                "mpi/rank1",
                t(40),
                t(90),
                vec![],
            )
            .unwrap();
        store
            .closed(
                trace,
                Some(exec),
                "collective",
                "mpi/net",
                t(90),
                t(95),
                vec![],
            )
            .unwrap();
        store.end(exec, t(95));
        store.end(root, t(100));

        let path = store.critical_path(trace).unwrap();
        assert_eq!(path.total(), Duration::from_secs(100), "tiles the root");
        // chronological and contiguous
        for pair in path.segments.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        assert_eq!(path.segments[0].start, t(0));
        assert_eq!(path.segments.last().unwrap().end, t(100));
        // the gating rank is on the path; the faster one is not
        let tracks: Vec<&str> = path.segments.iter().map(|s| s.track.as_str()).collect();
        assert!(tracks.contains(&"mpi/rank1"));
        assert!(!tracks.contains(&"mpi/rank0"));
        let by_kind = path.by_kind();
        let kind_secs = |k: &str| {
            by_kind
                .iter()
                .find(|(n, _)| n == k)
                .map_or(0.0, |(_, d)| d.as_secs_f64())
        };
        assert_eq!(kind_secs("queue_wait"), 40.0);
        assert_eq!(kind_secs("compute"), 50.0);
        assert_eq!(kind_secs("collective"), 5.0);
        assert_eq!(kind_secs("job"), 5.0, "root self-time after exec");
        assert!(path.kind_count() >= 4);
    }

    #[test]
    fn zero_duration_spans_do_not_derail_the_path() {
        let store = SpanStore::new(64);
        let trace = TraceId::for_job(1);
        let root = store.start(trace, None, "job", "broker", t(0)).unwrap();
        // instantaneous scoring marks at the grant moment
        store
            .closed(
                trace,
                Some(root),
                "scoring",
                "broker/alloc",
                t(10),
                t(10),
                vec![],
            )
            .unwrap();
        store
            .closed(
                trace,
                Some(root),
                "queue_wait",
                "broker/queue",
                t(0),
                t(10),
                vec![],
            )
            .unwrap();
        store.end(root, t(10));
        let path = store.critical_path(trace).unwrap();
        assert_eq!(path.total(), Duration::from_secs(10));
        assert_eq!(path.by_kind()[0].0, "queue_wait");
    }

    #[test]
    fn chrome_export_is_valid_and_maps_tracks() {
        let store = SpanStore::new(64);
        let trace = TraceId::for_job(3);
        let root = store
            .start_kv(
                trace,
                None,
                "job",
                "broker/jobs",
                t(1),
                vec![("job".into(), "md\"16\"".into())],
            )
            .unwrap();
        store
            .closed(
                trace,
                Some(root),
                "exec",
                "mpi:md16/rank0",
                t(2),
                t(5),
                vec![],
            )
            .unwrap();
        store.end(root, t(6));
        let _still_open = store.start(trace, None, "late", "broker/jobs", t(7));
        let js = store.to_chrome_json();
        json::validate(&js).expect("chrome export must be valid JSON");
        assert!(js.contains("\"traceEvents\":["));
        assert!(js.contains("\"ph\":\"M\""));
        assert!(js.contains("\"process_name\""));
        assert!(js.contains("\"thread_name\""));
        assert!(js.contains("\"ph\":\"X\""));
        assert!(js.contains("\"ts\":1000000"));
        assert!(js.contains("\"dur\":3000000"));
        assert!(js.contains("\"open_spans\":\"1\"") || js.contains("\"open_spans\":1"));
        // escaped attribute survived
        assert!(js.contains("md\\\"16\\\""));
    }

    #[test]
    fn render_trace_indents_children() {
        let store = SpanStore::new(64);
        let trace = TraceId::for_job(2);
        let root = store.start(trace, None, "job", "broker", t(0)).unwrap();
        store
            .closed(
                trace,
                Some(root),
                "queue_wait",
                "broker",
                t(0),
                t(4),
                vec![],
            )
            .unwrap();
        store.end(root, t(5));
        let text = store.render_trace(trace);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("job ["));
        assert!(lines[1].starts_with("  queue_wait ["));
    }

    #[test]
    fn new_trace_ids_never_collide_with_job_ids() {
        let store = SpanStore::new(8);
        let auto = store.new_trace();
        assert!(auto.0 >= TRACE_AUTO_BASE);
        assert!(TraceId::for_job(u32::MAX as u64 - 1).0 < TRACE_AUTO_BASE);
        assert_ne!(store.new_trace(), auto);
    }

    #[test]
    fn active_traces_are_open_non_system_traces() {
        let store = SpanStore::new(64);
        // system activity never counts as an active incident trace
        store
            .start(TraceId::SYSTEM, None, "tick", "monitor", t(0))
            .unwrap();
        let open = TraceId::for_job(5);
        let closed = TraceId::for_job(2);
        store.start(open, None, "job", "broker", t(1)).unwrap();
        let done = store.start(closed, None, "job", "broker", t(1)).unwrap();
        store.end(done, t(3));
        assert_eq!(store.active_traces(), vec![open]);
        // duplicates collapse: a second open span on the same trace
        store.start(open, None, "exec", "mpi", t(2)).unwrap();
        assert_eq!(store.active_traces(), vec![open]);
    }
}
