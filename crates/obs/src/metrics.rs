//! The metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! A [`Metrics`] registry hands out cheap clonable handles ([`Counter`],
//! [`Gauge`], and shared [`Histogram`]s) keyed by name. Instrumented code
//! holds a handle and bumps it; exporters walk the registry and render
//! everything as JSON or Prometheus-style text.
//!
//! Histograms use fixed upper-bound buckets (`value <= bound`, inclusive).
//! Quantile estimates interpolate linearly *within* the bucket containing
//! the requested rank (between the bucket's effective lower and upper
//! edges, clamped to the observed min/max), so a rank landing early in a
//! wide bucket no longer reports the bucket's upper bound. Estimates remain
//! exact whenever the target bucket is degenerate (all its observations
//! share one value, pinned by the min/max clamp).

use crate::json;
use crate::lock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge handle. The `f64` travels as its bit pattern in an
/// [`AtomicU64`], so hot-path updates never block and a panicking writer
/// can never poison readers. (`0u64` is the bit pattern of `0.0`, so the
/// derived default starts at zero like the old locked version did.)
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram. Bucket `i` counts observations with
/// `value <= bounds[i]` (and greater than the previous bound); values above
/// the last bound land in an implicit overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `counts.len() == bounds.len() + 1`; the last slot is the overflow.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over the given upper bounds. Bounds are sorted and
    /// deduplicated; non-finite bounds are discarded.
    pub fn new(bounds: &[f64]) -> Self {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Cumulative counts per bucket (last entry equals [`count`](Self::count)).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Quantile estimate for `q` in `[0, 1]`, linearly interpolated within
    /// the bucket whose cumulative count reaches rank `ceil(q * count)`.
    /// The bucket's effective edges are its configured bounds clamped to
    /// the observed min/max, so degenerate buckets stay exact and the
    /// estimate never leaves the observed value range. Returns `None` when
    /// empty; ranks landing in the overflow bucket report the observed max.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut before = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if before + c >= rank {
                if i >= self.bounds.len() {
                    // overflow bucket has no upper edge; the max is the
                    // only honest estimate
                    return Some(self.max);
                }
                let upper = self.bounds[i].min(self.max);
                let lower_edge = if i == 0 {
                    f64::NEG_INFINITY
                } else {
                    self.bounds[i - 1]
                };
                let lower = lower_edge.max(self.min).min(upper);
                let pos = (rank - before) as f64 / c as f64;
                return Some(lower + (upper - lower) * pos);
            }
            before += c;
        }
        Some(self.max)
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .bounds
            .iter()
            .zip(&self.counts)
            .map(|(b, c)| json::object(&[("le", json::num(*b)), ("count", c.to_string())]))
            .collect();
        let (min, max) = if self.total == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        json::object(&[
            ("count", self.total.to_string()),
            ("sum", json::num(self.sum)),
            ("mean", json::num(self.mean())),
            ("min", json::num(min)),
            ("max", json::num(max)),
            ("overflow", self.counts[self.bounds.len()].to_string()),
            ("buckets", json::array(&buckets)),
        ])
    }
}

/// Escape a Prometheus label *value* per the exposition format: backslash,
/// double-quote, and line-feed must be escaped inside the quoted value.
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape `# HELP` text per the exposition format: backslash and line-feed
/// (quotes are legal in help text and stay as-is).
pub fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Force `s` into the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: invalid characters become `_`, and a
/// leading digit gets a `_` prefix. Empty input becomes `_`.
pub fn sanitize_metric_name(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 1);
    for (i, c) in s.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if valid {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Arc<Mutex<Histogram>>>,
    help: BTreeMap<String, String>,
}

/// Registry of named metrics (cheap clonable handle).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<Inner>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The counter named `name`, creating it at 0 on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lock::lock(&self.inner)
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, creating it at 0 on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lock::lock(&self.inner)
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, creating it with `bounds` on first use
    /// (later calls keep the original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Mutex<Histogram>> {
        lock::lock(&self.inner)
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::new(Histogram::new(bounds))))
            .clone()
    }

    /// Add 1 to the counter `name`.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Add `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Set the gauge `name` to `v`.
    pub fn set(&self, name: &str, v: f64) {
        self.gauge(name).set(v);
    }

    /// Record `v` into the histogram `name` (created with `bounds` on first
    /// use).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        let h = self.histogram(name, bounds);
        lock::lock(&h).observe(v);
    }

    /// Current value of the counter `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        lock::lock(&self.inner)
            .counters
            .get(name)
            .map_or(0, Counter::get)
    }

    /// Current value of the gauge `name` (0 if absent).
    pub fn gauge_value(&self, name: &str) -> f64 {
        lock::lock(&self.inner)
            .gauges
            .get(name)
            .map_or(0.0, Gauge::get)
    }

    /// Attach `# HELP` text to the metric `name` for the Prometheus
    /// exporter (escaped on export; the last call wins).
    pub fn describe(&self, name: &str, help: &str) {
        lock::lock(&self.inner)
            .help
            .insert(name.to_string(), help.to_string());
    }

    /// Snapshot of the histogram `name`, if present.
    pub fn histogram_snapshot(&self, name: &str) -> Option<Histogram> {
        lock::lock(&self.inner)
            .histograms
            .get(name)
            .map(|h| lock::lock(h).clone())
    }

    /// Export the whole registry as one JSON object with `counters`,
    /// `gauges`, and `histograms` sections.
    pub fn to_json(&self) -> String {
        self.to_json_excluding(&[])
    }

    /// [`Metrics::to_json`], omitting every metric whose name contains one
    /// of `excluded`. The flight recorder digests the registry through
    /// this with the wall-clock families excluded: real-time measurements
    /// (tick/decision latencies) legitimately differ between a recording
    /// and its replay, while everything else must be bit-identical.
    pub fn to_json_excluding(&self, excluded: &[&str]) -> String {
        let keep = |name: &str| !excluded.iter().any(|e| name.contains(e));
        let inner = lock::lock(&self.inner);
        let counters: Vec<(&str, String)> = inner
            .counters
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, c)| (k.as_str(), c.get().to_string()))
            .collect();
        let gauges: Vec<(&str, String)> = inner
            .gauges
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, g)| (k.as_str(), json::num(g.get())))
            .collect();
        let histograms: Vec<(&str, String)> = inner
            .histograms
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, h)| (k.as_str(), lock::lock(h).to_json()))
            .collect();
        json::object(&[
            ("counters", json::object(&counters)),
            ("gauges", json::object(&gauges)),
            ("histograms", json::object(&histograms)),
        ])
    }

    /// Export the registry as Prometheus exposition text: every family gets
    /// a `# TYPE` line (and a `# HELP` line when described), names are
    /// sanitized into the metric-name grammar, and label values are escaped.
    pub fn to_prometheus(&self) -> String {
        let inner = lock::lock(&self.inner);
        let mut out = String::new();
        let header = |out: &mut String, raw: &str, kind: &str| -> String {
            let name = sanitize_metric_name(raw);
            if let Some(help) = inner.help.get(raw) {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            }
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            name
        };
        for (raw, c) in &inner.counters {
            let name = header(&mut out, raw, "counter");
            out.push_str(&format!("{name} {}\n", c.get()));
        }
        for (raw, g) in &inner.gauges {
            let name = header(&mut out, raw, "gauge");
            out.push_str(&format!("{name} {}\n", g.get()));
        }
        for (raw, h) in &inner.histograms {
            let h = lock::lock(h);
            let name = header(&mut out, raw, "histogram");
            let mut acc = 0;
            for (b, c) in h.bounds.iter().zip(&h.counts) {
                acc += c;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {acc}\n",
                    escape_label_value(&b.to_string())
                ));
            }
            out.push_str(&format!(
                "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                h.total, h.sum, h.total
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = Metrics::new();
        m.inc("relaunch_total");
        m.add("relaunch_total", 2);
        m.set("queue_depth", 4.0);
        assert_eq!(m.counter_value("relaunch_total"), 3);
        assert_eq!(m.gauge_value("queue_depth"), 4.0);
        // handles are shared, not copies
        let c = m.counter("relaunch_total");
        c.inc();
        assert_eq!(m.counter_value("relaunch_total"), 4);
        assert_eq!(m.counter_value("absent"), 0);
    }

    #[test]
    fn gauge_is_atomic_and_handle_shared() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0, "default bit pattern is 0.0");
        let g2 = g.clone();
        g.set(-2.5);
        assert_eq!(g2.get(), -2.5);
        g2.set(1e-300);
        assert_eq!(g.get(), 1e-300, "full f64 range survives the bit cast");
    }

    #[test]
    fn poisoned_histogram_lock_is_recovered() {
        let m = Metrics::new();
        m.observe("h_secs", &[1.0], 0.5);
        let h = m.histogram("h_secs", &[1.0]);
        let h2 = Arc::clone(&h);
        let _ = std::panic::catch_unwind(move || {
            let _guard = h2.lock().unwrap();
            panic!("poison the histogram");
        });
        assert!(h.is_poisoned());
        // observation, snapshot, and both exporters must all still work
        m.observe("h_secs", &[1.0], 2.0);
        assert_eq!(m.histogram_snapshot("h_secs").unwrap().count(), 2);
        assert!(m.to_json().contains("\"h_secs\""));
        assert!(m.to_prometheus().contains("h_secs_count 2"));
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[1.0, 5.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (inclusive boundary)
        h.observe(1.1); // bucket 1
        h.observe(5.0); // bucket 1 (inclusive boundary)
        h.observe(10.0); // bucket 2
        h.observe(42.0); // overflow
        assert_eq!(h.bucket_counts(), &[2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.cumulative(), vec![2, 4, 5, 6]);
    }

    #[test]
    fn quantiles_are_monotone_and_interpolate_within_buckets() {
        let mut h = Histogram::new(&[1.0, 2.0, 4.0, 8.0]);
        // all observations land exactly on bucket boundaries
        for v in [1.0, 1.0, 2.0, 4.0, 4.0, 4.0, 8.0, 8.0] {
            h.observe(v);
        }
        // first-bucket ranks clamp to the observed min/degenerate bucket
        assert_eq!(h.quantile(0.25), Some(1.0)); // rank 2 of 8
        assert_eq!(h.quantile(1.0), Some(8.0)); // rank 8
                                                // rank 4 is the first of three samples in the (2, 4] bucket:
                                                // 1/3 of the way in, not the old upper-bound answer of 4.0
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - (2.0 + 2.0 / 3.0)).abs() < 1e-12, "q50 = {q50}");
        // monotonicity over a fine sweep
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = i as f64 / 100.0;
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantile({q}) = {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn quantiles_match_exact_sample_quantiles_under_uniform_fill() {
        // 1..=100 uniformly into 4 equal-width buckets: interpolation must
        // recover the exact empirical quantiles at every bucket fraction
        let mut h = Histogram::new(&[25.0, 50.0, 75.0, 100.0]);
        for v in 1..=100 {
            h.observe(v as f64);
        }
        for (q, expect) in [
            (0.10, 10.0),
            (0.25, 25.0),
            (0.40, 40.0),
            (0.50, 50.0),
            (0.90, 90.0),
            (0.99, 99.0),
            (1.00, 100.0),
        ] {
            let got = h.quantile(q).unwrap();
            assert!(
                (got - expect).abs() < 1.0 + 1e-9,
                "quantile({q}) = {got}, want ~{expect}"
            );
        }
        // and the mid-bucket cases are exact: rank 40 is 15/25 of (25, 50]
        assert!((h.quantile(0.40).unwrap() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_overflow_reports_observed_max() {
        let mut h = Histogram::new(&[1.0]);
        h.observe(0.5);
        h.observe(99.0);
        assert_eq!(h.quantile(1.0), Some(99.0));
        assert_eq!(h.quantile(0.5), Some(1.0));
        assert_eq!(Histogram::new(&[1.0]).quantile(0.5), None);
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut h = Histogram::new(&[1.0, f64::NAN, 2.0]);
        assert_eq!(h.bounds(), &[1.0, 2.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn exports_are_well_formed() {
        let m = Metrics::new();
        m.inc("a_total");
        m.set("b", 1.5);
        m.observe("c_secs", &[1.0, 10.0], 0.5);
        let js = m.to_json();
        assert!(js.contains("\"counters\":{\"a_total\":1}"));
        assert!(js.contains("\"b\":1.5"));
        assert!(js.contains("\"histograms\":{\"c_secs\":"));
        let prom = m.to_prometheus();
        assert!(prom.contains("# TYPE a_total counter"));
        assert!(prom.contains("c_secs_bucket{le=\"1\"} 1"));
        assert!(prom.contains("c_secs_count 1"));
    }

    #[test]
    fn escaping_helpers_cover_the_exposition_grammar() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        assert_eq!(
            escape_help("back\\slash\nnewline"),
            "back\\\\slash\\nnewline"
        );
        assert_eq!(escape_help("quotes \"stay\""), "quotes \"stay\"");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_metric_name("bad name-有"), "bad_name__");
        assert_eq!(sanitize_metric_name("9lead"), "_9lead");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    /// Hand-parse the whole exposition output: every non-comment line must
    /// be `name[{labels}] value`, every family must have exactly one
    /// `# TYPE`, and HELP/label text must carry no raw specials.
    #[test]
    fn prometheus_exposition_format_holds() {
        let m = Metrics::new();
        m.inc("jobs_total");
        m.describe("jobs_total", "jobs seen\nwith a \\ backslash");
        m.set("weird name", 2.0); // sanitized on export
        m.observe("wait_secs", &[0.5, 1.0], 0.75);
        m.describe("wait_secs", "queue wait");
        let prom = m.to_prometheus();

        let is_name = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut types = 0;
        for line in prom.lines() {
            assert!(!line.is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap();
                let kind = it.next().unwrap_or("");
                assert!(is_name(name), "bad family name {name:?}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad type {kind:?}"
                );
                types += 1;
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let mut it = rest.splitn(2, ' ');
                assert!(is_name(it.next().unwrap()));
                let help = it.next().unwrap_or("");
                assert!(!help.contains('\n'), "raw newline in HELP");
                continue;
            }
            // sample line: name[{labels}] value
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "bad value {value:?}"
            );
            let name = match name_part.split_once('{') {
                Some((n, labels)) => {
                    let labels = labels.strip_suffix('}').expect("labels close");
                    for pair in labels.split(',') {
                        let (k, v) = pair.split_once('=').expect("label k=v");
                        assert!(is_name(k), "bad label name {k:?}");
                        let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
                        let v = v.expect("label value quoted");
                        // no raw quote may survive inside the quoted value
                        let mut chars = v.chars().peekable();
                        while let Some(c) = chars.next() {
                            assert!(c != '"', "raw quote in label value {v:?}");
                            if c == '\\' {
                                assert!(
                                    matches!(chars.next(), Some('\\' | '"' | 'n')),
                                    "bad escape in label value {v:?}"
                                );
                            }
                        }
                    }
                    n
                }
                None => name_part,
            };
            assert!(is_name(name), "bad metric name {name:?}");
        }
        assert_eq!(types, 3, "one TYPE line per family");
        assert!(prom.contains("# HELP jobs_total jobs seen\\nwith a \\\\ backslash\n"));
        assert!(prom.contains("# TYPE weird_name gauge\n"));
    }
}
