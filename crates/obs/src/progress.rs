//! Structured progress logging for experiment binaries.
//!
//! Every bench binary used to narrate itself with ad-hoc `println!` lines.
//! [`Progress`] replaces those with a uniform `[experiment] key=value`
//! format and a single switch: setting the `NLRM_QUIET` environment
//! variable (to anything but `0` or the empty string) silences all of it,
//! which CI smoke runs use.

use std::fmt::Display;

/// Progress logger for one experiment run.
#[derive(Debug, Clone)]
pub struct Progress {
    name: String,
    quiet: bool,
}

/// Is `NLRM_QUIET` set (non-empty, not `0`)?
pub fn quiet() -> bool {
    std::env::var("NLRM_QUIET").is_ok_and(|v| !v.is_empty() && v != "0")
}

impl Progress {
    /// A logger for the experiment `name`, honoring `NLRM_QUIET`.
    pub fn start(name: &str) -> Self {
        let p = Progress {
            name: name.to_string(),
            quiet: quiet(),
        };
        p.line("start");
        p
    }

    fn line(&self, msg: &str) {
        if !self.quiet {
            println!("[{}] {}", self.name, msg);
        }
    }

    /// Log entering a named phase.
    pub fn phase(&self, phase: &str) {
        self.line(&format!("phase={phase}"));
    }

    /// Log one `key=value` parameter or result.
    pub fn kv(&self, key: &str, value: impl Display) {
        self.line(&format!("{key}={value}"));
    }

    /// Log a free-form note.
    pub fn note(&self, msg: &str) {
        self.line(msg);
    }

    /// Log an output artifact path.
    pub fn wrote(&self, path: impl Display) {
        self.line(&format!("wrote={path}"));
    }

    /// Print a multi-line result block (a rendered table, a figure)
    /// verbatim — no `[name]` prefix, still silenced by `NLRM_QUIET`.
    pub fn block(&self, text: impl Display) {
        if !self.quiet {
            println!("{text}");
        }
    }

    /// Log completion.
    pub fn done(&self) {
        self.line("done");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logger_constructs_and_logs_without_panicking() {
        // Env-var behavior is covered by the ci.sh smoke run (mutating env
        // vars in-process races parallel tests); here we exercise the API.
        let p = Progress {
            name: "test".into(),
            quiet: true,
        };
        p.phase("warmup");
        p.kv("seed", 42);
        p.note("free-form");
        p.wrote("/tmp/x.json");
        p.block("| a | b |\n| 1 | 2 |");
        p.done();
    }
}
