//! Declarative service-level objectives with rolling-window attainment and
//! error-budget accounting.
//!
//! An [`Slo`] names an [`Objective`] over a registry metric — "queue-wait
//! p99 at most 600 s", "shed rate at most 0.05/s" — plus a target fraction
//! of telemetry ticks that must meet it. Each tick, [`SloTracker::evaluate`]
//! scores every objective, updates a rolling window of good/bad ticks, and
//! derives attainment, remaining error budget, and burn rate. Breaches
//! (attainment dropping below target) are reported once per excursion so
//! callers can journal them without flooding.

use crate::json;
use crate::metrics::Metrics;
use nlrm_sim_core::time::SimTime;
use std::collections::VecDeque;

/// What an SLO measures each tick.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// `quantile(q)` of the named histogram must be ≤ `max`. Ticks before
    /// the histogram has observations count as good (nothing has violated).
    QuantileAtMost {
        /// Histogram metric name.
        histogram: String,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The named gauge must be ≤ `max`.
    GaugeAtMost {
        /// Gauge metric name.
        gauge: String,
        /// Inclusive upper bound.
        max: f64,
    },
    /// The named counter's increase rate (per virtual second, measured
    /// between consecutive ticks) must be ≤ `max_per_sec`.
    RateAtMost {
        /// Counter metric name.
        counter: String,
        /// Inclusive upper bound, per virtual second.
        max_per_sec: f64,
    },
}

impl Objective {
    fn bound(&self) -> f64 {
        match self {
            Objective::QuantileAtMost { max, .. } => *max,
            Objective::GaugeAtMost { max, .. } => *max,
            Objective::RateAtMost { max_per_sec, .. } => *max_per_sec,
        }
    }

    /// The registry metric the objective measures — carried on
    /// `slo_breached` events so incidents can be joined against the
    /// sampler and histograms without heuristics.
    pub fn metric(&self) -> &str {
        match self {
            Objective::QuantileAtMost { histogram, .. } => histogram,
            Objective::GaugeAtMost { gauge, .. } => gauge,
            Objective::RateAtMost { counter, .. } => counter,
        }
    }
}

/// One declared objective: name, measurement, target attainment, window.
#[derive(Debug, Clone)]
pub struct Slo {
    /// Stable identifier used in reports and journal events.
    pub name: String,
    /// What is measured each tick.
    pub objective: Objective,
    /// Fraction of window ticks that must be good, in `[0, 1]`.
    pub target: f64,
    /// Rolling window length in telemetry ticks.
    pub window: usize,
}

impl Slo {
    /// An SLO with `target` attainment over a `window`-tick rolling window.
    pub fn new(name: &str, objective: Objective, target: f64, window: usize) -> Slo {
        Slo {
            name: name.to_string(),
            objective,
            target: target.clamp(0.0, 1.0),
            window: window.max(1),
        }
    }
}

/// Per-SLO rolling state.
#[derive(Debug, Clone)]
struct SloState {
    slo: Slo,
    window: VecDeque<bool>,
    /// Bad ticks ever seen — monotone, the basis of budget *consumption*.
    bad_ticks_total: u64,
    /// All ticks ever seen — monotone.
    ticks_total: u64,
    prev_counter: Option<(u64, SimTime)>,
    breach_active: bool,
}

/// Point-in-time result for one SLO after a tick.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The SLO's name.
    pub name: String,
    /// Measured value this tick (`None` when not yet measurable).
    pub current: Option<f64>,
    /// The objective's bound.
    pub bound: f64,
    /// Did this tick meet the objective?
    pub ok: bool,
    /// Good-tick fraction over the rolling window (1.0 while empty).
    pub attainment: f64,
    /// The declared target attainment.
    pub target: f64,
    /// Fraction of the *lifetime* error budget still unspent, in `[0, 1]`.
    /// Budget allowed is `(1 - target)` of all ticks so far.
    pub error_budget_remaining: f64,
    /// Bad-tick fraction in the window divided by the allowed fraction:
    /// >1 means burning budget faster than sustainable.
    pub burn_rate: f64,
    /// True while attainment sits below target.
    pub breached: bool,
    /// Monotone count of ticks evaluated for this SLO.
    pub ticks_total: u64,
    /// Monotone count of bad ticks for this SLO.
    pub bad_ticks_total: u64,
}

impl SloStatus {
    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        json::object(&[
            ("name", json::string(&self.name)),
            ("current", self.current.map_or("null".into(), json::num)),
            ("bound", json::num(self.bound)),
            ("ok", self.ok.to_string()),
            ("attainment", json::num(self.attainment)),
            ("target", json::num(self.target)),
            (
                "error_budget_remaining",
                json::num(self.error_budget_remaining),
            ),
            ("burn_rate", json::num(self.burn_rate)),
            ("breached", self.breached.to_string()),
            ("ticks_total", self.ticks_total.to_string()),
            ("bad_ticks_total", self.bad_ticks_total.to_string()),
        ])
    }
}

/// Evaluates a set of SLOs against the metrics registry each telemetry tick.
#[derive(Debug, Clone, Default)]
pub struct SloTracker {
    slos: Vec<SloState>,
    latest: Vec<SloStatus>,
}

/// A breach edge: an SLO whose attainment just dropped below target.
#[derive(Debug, Clone)]
pub struct Breach {
    /// The SLO's name.
    pub slo: String,
    /// Attainment at the moment of the breach.
    pub attainment: f64,
    /// The declared target.
    pub target: f64,
    /// The registry metric the objective measures.
    pub metric: String,
}

impl SloTracker {
    /// A tracker with no SLOs.
    pub fn new() -> SloTracker {
        SloTracker::default()
    }

    /// Declare one SLO.
    pub fn add(&mut self, slo: Slo) {
        self.slos.push(SloState {
            slo,
            window: VecDeque::new(),
            bad_ticks_total: 0,
            ticks_total: 0,
            prev_counter: None,
            breach_active: false,
        });
    }

    /// Number of declared SLOs.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// True when no SLOs are declared.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Evaluate every SLO at `now`, returning breach *edges* only (an SLO
    /// already below target from a previous tick is not re-reported until
    /// it recovers and breaches again).
    pub fn evaluate(&mut self, now: SimTime, metrics: &Metrics) -> Vec<Breach> {
        let mut breaches = Vec::new();
        let mut latest = Vec::with_capacity(self.slos.len());
        for st in &mut self.slos {
            let current = match &st.slo.objective {
                Objective::QuantileAtMost { histogram, q, .. } => metrics
                    .histogram_snapshot(histogram)
                    .and_then(|h| h.quantile(*q)),
                Objective::GaugeAtMost { gauge, .. } => Some(metrics.gauge_value(gauge)),
                Objective::RateAtMost { counter, .. } => {
                    let cur = metrics.counter_value(counter);
                    let rate = st.prev_counter.map(|(prev, at)| {
                        let dt = now.since(at).as_secs_f64();
                        if dt > 0.0 {
                            cur.saturating_sub(prev) as f64 / dt
                        } else {
                            0.0
                        }
                    });
                    st.prev_counter = Some((cur, now));
                    rate
                }
            };
            // not-yet-measurable ticks are good: nothing has violated
            let ok = current.is_none_or(|v| v <= st.slo.objective.bound());
            st.ticks_total += 1;
            if !ok {
                st.bad_ticks_total += 1;
            }
            st.window.push_back(ok);
            while st.window.len() > st.slo.window {
                st.window.pop_front();
            }
            let window_len = st.window.len() as f64;
            let window_bad = st.window.iter().filter(|ok| !**ok).count() as f64;
            let attainment = if window_len > 0.0 {
                (window_len - window_bad) / window_len
            } else {
                1.0
            };
            let allowed = (1.0 - st.slo.target).max(1e-9);
            let budget_spent = st.bad_ticks_total as f64 / st.ticks_total.max(1) as f64 / allowed;
            let error_budget_remaining = (1.0 - budget_spent).clamp(0.0, 1.0);
            let burn_rate = (window_bad / window_len.max(1.0)) / allowed;
            let breached = attainment < st.slo.target;
            if breached && !st.breach_active {
                breaches.push(Breach {
                    slo: st.slo.name.clone(),
                    attainment,
                    target: st.slo.target,
                    metric: st.slo.objective.metric().to_string(),
                });
            }
            st.breach_active = breached;
            latest.push(SloStatus {
                name: st.slo.name.clone(),
                current,
                bound: st.slo.objective.bound(),
                ok,
                attainment,
                target: st.slo.target,
                error_budget_remaining,
                burn_rate,
                breached,
                ticks_total: st.ticks_total,
                bad_ticks_total: st.bad_ticks_total,
            });
        }
        self.latest = latest;
        breaches
    }

    /// The statuses computed by the most recent [`SloTracker::evaluate`].
    pub fn latest(&self) -> &[SloStatus] {
        &self.latest
    }

    /// Export the latest statuses as a JSON array.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.latest.iter().map(SloStatus::to_json).collect();
        json::array(&items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_sim_core::time::Duration;

    fn gauge_slo(max: f64, target: f64, window: usize) -> Slo {
        Slo::new(
            "g_at_most",
            Objective::GaugeAtMost {
                gauge: "g".into(),
                max,
            },
            target,
            window,
        )
    }

    #[test]
    fn attainment_tracks_good_fraction() {
        let m = Metrics::new();
        let mut tr = SloTracker::new();
        tr.add(gauge_slo(10.0, 0.9, 10));
        let mut t = SimTime::ZERO;
        for v in [1.0, 2.0, 50.0, 3.0] {
            m.set("g", v);
            t = t + Duration::from_secs(30);
            tr.evaluate(t, &m);
        }
        let s = &tr.latest()[0];
        assert_eq!(s.ticks_total, 4);
        assert_eq!(s.bad_ticks_total, 1);
        assert!((s.attainment - 0.75).abs() < 1e-12);
        assert!(s.breached, "0.75 < 0.9 target");
    }

    #[test]
    fn breach_edges_fire_once_per_excursion() {
        let m = Metrics::new();
        let mut tr = SloTracker::new();
        tr.add(gauge_slo(10.0, 0.99, 2));
        let mut t = SimTime::ZERO;
        let mut edges = 0;
        // bad, bad (still one excursion), good+good (recover), bad (new one)
        for v in [50.0, 50.0, 1.0, 1.0, 50.0] {
            m.set("g", v);
            t = t + Duration::from_secs(30);
            edges += tr.evaluate(t, &m).len();
        }
        assert_eq!(edges, 2);
    }

    #[test]
    fn rate_objective_uses_virtual_time_deltas() {
        let m = Metrics::new();
        let mut tr = SloTracker::new();
        tr.add(Slo::new(
            "shed_rate",
            Objective::RateAtMost {
                counter: "shed_total".into(),
                max_per_sec: 0.5,
            },
            0.9,
            10,
        ));
        tr.evaluate(SimTime::from_secs(0), &m);
        assert_eq!(tr.latest()[0].current, None, "first tick has no rate");
        m.add("shed_total", 10); // 10 sheds over the next 10 s = 1.0/s
        tr.evaluate(SimTime::from_secs(10), &m);
        let s = &tr.latest()[0];
        assert_eq!(s.current, Some(1.0));
        assert!(!s.ok);
    }

    #[test]
    fn unmeasurable_quantile_ticks_are_good() {
        let m = Metrics::new();
        let mut tr = SloTracker::new();
        tr.add(Slo::new(
            "wait_p99",
            Objective::QuantileAtMost {
                histogram: "w".into(),
                q: 0.99,
                max: 60.0,
            },
            0.99,
            10,
        ));
        tr.evaluate(SimTime::from_secs(30), &m);
        let s = &tr.latest()[0];
        assert!(s.ok && s.current.is_none());
        assert_eq!(s.error_budget_remaining, 1.0);
    }

    #[test]
    fn json_export_is_valid() {
        let m = Metrics::new();
        m.set("g", 99.0);
        let mut tr = SloTracker::new();
        tr.add(gauge_slo(10.0, 0.9, 4));
        tr.evaluate(SimTime::from_secs(1), &m);
        assert!(json::validate(&tr.to_json()).is_ok(), "{}", tr.to_json());
    }
}
