//! Causal root-cause analysis for anomalies and SLO breaches.
//!
//! Given the journal seq of an `anomaly_detected` or `slo_breached` event,
//! [`analyze`] walks **backward** through the journal (and the trigger's
//! attached trace ids) within a bounded evidence window, classifies every
//! event it finds into a [`CauseKind`], and scores each candidate cause by
//! how well it explains the triggering detector:
//!
//! * staleness surges point at the monitoring plane — injected faults on
//!   daemons/master/slave, supervision churn, stale-data exclusions;
//! * queue-wait spikes and starvation point at the scheduling plane — the
//!   batch cycle whose head reservation held capacity, capacity-blocked
//!   deferrals, admission sheds;
//! * load spikes point at placement — the leases granted onto the affected
//!   nodes just before the spike;
//! * utilization collapses point at dying capacity — node kills with work
//!   still queued.
//!
//! The result is a ranked cause chain ([`RcaReport::causes`], best first),
//! each cause carrying the journal evidence (seq/time/detail) that backs
//! it. When the journal ring has evicted part of the window the report
//! says so ([`RcaReport::truncated`]) instead of passing silence off as
//! absence of cause.

use crate::ctx::Obs;
use crate::journal::{Event, EventKind};
use crate::json;
use crate::span::TraceId;
use nlrm_sim_core::time::{Duration, SimTime};

/// Evidence kept per cause (the newest; older corroboration is counted,
/// not stored).
const MAX_EVIDENCE_REFS: usize = 8;

/// The taxonomy of root causes the engine can identify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CauseKind {
    /// A scheduled fault (kill/hang/delay) was injected.
    FaultInjection,
    /// The supervision plane churned: relaunches, failovers, spawned
    /// slaves — monitoring capability was lost or degraded.
    SupervisionLoss,
    /// Load derivation consumed stale data: node exclusions, pair blends.
    StaleData,
    /// A large job's head reservation (or raw capacity shortfall) held the
    /// queue back.
    OversizedReservation,
    /// Queue pressure: load-based deferrals, admission rejections, sheds.
    QueuePressure,
    /// Leases placed just before the trigger loaded the affected nodes.
    LeasePlacement,
}

impl CauseKind {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            CauseKind::FaultInjection => "fault_injection",
            CauseKind::SupervisionLoss => "supervision_loss",
            CauseKind::StaleData => "stale_data",
            CauseKind::OversizedReservation => "oversized_reservation",
            CauseKind::QueuePressure => "queue_pressure",
            CauseKind::LeasePlacement => "lease_placement",
        }
    }

    /// Prior weight: how strong a root cause this kind is when present at
    /// all, before detector-specific relevance.
    fn base_weight(self) -> f64 {
        match self {
            CauseKind::FaultInjection => 3.0,
            CauseKind::OversizedReservation => 2.5,
            CauseKind::LeasePlacement => 2.2,
            CauseKind::SupervisionLoss => 2.0,
            CauseKind::StaleData => 1.5,
            CauseKind::QueuePressure => 1.2,
        }
    }
}

/// How well `kind` explains the named detector/SLO, as a multiplier.
fn relevance(detector: &str, kind: CauseKind) -> f64 {
    use CauseKind::*;
    match detector {
        "staleness_surge" => match kind {
            StaleData => 1.5,
            FaultInjection | SupervisionLoss => 1.2,
            QueuePressure => 0.4,
            OversizedReservation | LeasePlacement => 0.3,
        },
        "starvation" | "queue_wait_p99" => match kind {
            OversizedReservation => 1.5,
            QueuePressure => 1.2,
            LeasePlacement => 0.8,
            FaultInjection => 0.7,
            SupervisionLoss | StaleData => 0.5,
        },
        "utilization_collapse" => match kind {
            FaultInjection => 1.4,
            SupervisionLoss | QueuePressure => 1.0,
            StaleData | OversizedReservation => 0.8,
            LeasePlacement => 0.5,
        },
        "load_spike" => match kind {
            LeasePlacement => 1.6,
            FaultInjection | QueuePressure => 0.8,
            OversizedReservation => 0.5,
            StaleData | SupervisionLoss => 0.4,
        },
        "traffic_blowup" => match kind {
            SupervisionLoss => 1.2,
            FaultInjection => 1.0,
            _ => 0.5,
        },
        "shed_rate" => match kind {
            QueuePressure => 1.5,
            OversizedReservation => 1.2,
            _ => 0.7,
        },
        "decision_latency_p99" => match kind {
            LeasePlacement => 1.3,
            QueuePressure => 1.0,
            _ => 0.7,
        },
        _ => 1.0,
    }
}

/// Per-evidence factor for fault injections: a fault on the monitoring
/// plane explains a staleness/traffic anomaly better than one on a
/// compute node, and vice versa for capacity collapses.
fn fault_target_factor(detector: &str, target: &str) -> f64 {
    let monitoring_plane = target.starts_with("daemon:") || target == "master" || target == "slave";
    match detector {
        "staleness_surge" | "traffic_blowup" => {
            if monitoring_plane {
                1.2
            } else {
                0.6
            }
        }
        "utilization_collapse" | "load_spike" => {
            if monitoring_plane {
                0.8
            } else {
                1.3
            }
        }
        _ => 1.0,
    }
}

/// One journal event backing a cause.
#[derive(Debug, Clone, PartialEq)]
pub struct EvidenceRef {
    /// Journal sequence number.
    pub seq: u64,
    /// Virtual time of the event.
    pub at: SimTime,
    /// Event kind name.
    pub kind: String,
    /// One-line payload detail.
    pub detail: String,
}

impl EvidenceRef {
    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        json::object(&[
            ("seq", self.seq.to_string()),
            ("t_s", json::num(self.at.as_secs_f64())),
            ("kind", json::string(&self.kind)),
            ("detail", json::string(&self.detail)),
        ])
    }
}

/// One ranked candidate cause.
#[derive(Debug, Clone, PartialEq)]
pub struct Cause {
    /// The cause classification.
    pub kind: CauseKind,
    /// Ranking score (higher = more likely the root).
    pub score: f64,
    /// One-line human summary.
    pub summary: String,
    /// Total corroborating events found in the window.
    pub evidence_total: usize,
    /// The newest few of them (bounded per cause), in emission order.
    pub evidence: Vec<EvidenceRef>,
}

impl Cause {
    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        let refs: Vec<String> = self.evidence.iter().map(EvidenceRef::to_json).collect();
        json::object(&[
            ("kind", json::string(self.kind.label())),
            ("score", json::num(self.score)),
            ("summary", json::string(&self.summary)),
            ("evidence_total", self.evidence_total.to_string()),
            ("evidence", json::array(&refs)),
        ])
    }
}

/// The full root-cause report for one trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct RcaReport {
    /// Journal seq of the trigger event.
    pub trigger_seq: u64,
    /// Trigger label (`anomaly:staleness_surge`, `slo:queue_wait_p99`).
    pub trigger: String,
    /// The detector or SLO name driving cause relevance.
    pub detector: String,
    /// The registry metric the trigger carries.
    pub metric: String,
    /// Start of the evidence window walked.
    pub window_start: SimTime,
    /// End of the window (the trigger's timestamp).
    pub window_end: SimTime,
    /// True when the journal ring evicted part of the window, so absent
    /// evidence is *unknown*, not exonerating.
    pub truncated: bool,
    /// Traces the trigger carried (jobs in flight at detection).
    pub traces: Vec<TraceId>,
    /// Candidate causes, best first (deterministic order).
    pub causes: Vec<Cause>,
}

impl RcaReport {
    /// The top-ranked cause, if any evidence was found.
    pub fn top_cause(&self) -> Option<&Cause> {
        self.causes.first()
    }

    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        let causes: Vec<String> = self.causes.iter().map(Cause::to_json).collect();
        let traces: Vec<String> = self
            .traces
            .iter()
            .map(|t| json::string(&t.to_string()))
            .collect();
        json::object(&[
            ("trigger_seq", self.trigger_seq.to_string()),
            ("trigger", json::string(&self.trigger)),
            ("detector", json::string(&self.detector)),
            ("metric", json::string(&self.metric)),
            ("window_start_s", json::num(self.window_start.as_secs_f64())),
            ("window_end_s", json::num(self.window_end.as_secs_f64())),
            ("truncated", self.truncated.to_string()),
            ("traces", json::array(&traces)),
            ("causes", json::array(&causes)),
        ])
    }

    /// Multi-line human rendering of the ranked chain.
    pub fn render(&self) -> String {
        let mut out = format!(
            "root-cause analysis for {} (seq {}, metric {}) over [{} .. {}]{}:\n",
            self.trigger,
            self.trigger_seq,
            self.metric,
            self.window_start,
            self.window_end,
            if self.truncated {
                " [EVIDENCE TRUNCATED by journal eviction]"
            } else {
                ""
            }
        );
        if self.causes.is_empty() {
            out.push_str("  no candidate causes in the window\n");
        }
        for (i, cause) in self.causes.iter().enumerate() {
            out.push_str(&format!(
                "  #{} {} (score {:.2}): {}\n",
                i + 1,
                cause.kind.label(),
                cause.score,
                cause.summary
            ));
            for e in &cause.evidence {
                out.push_str(&format!(
                    "       seq={} t={} {}: {}\n",
                    e.seq, e.at, e.kind, e.detail
                ));
            }
        }
        out
    }
}

/// Classify one journal event into a cause kind with a one-line detail;
/// `None` for events that are not causal evidence.
fn classify(event: &Event) -> Option<(CauseKind, String)> {
    let detail = |s: String| s;
    match &event.kind {
        EventKind::FaultApplied { target, action } => Some((
            CauseKind::FaultInjection,
            detail(format!("{action} on {target}")),
        )),
        EventKind::DaemonRelaunched { daemon, strikes } => Some((
            CauseKind::SupervisionLoss,
            detail(format!("relaunched {daemon} (strikes {strikes})")),
        )),
        EventKind::RelaunchSuppressed { daemon, until } => Some((
            CauseKind::SupervisionLoss,
            detail(format!("backoff holds {daemon} until {until}")),
        )),
        EventKind::Failover { from, to } => Some((
            CauseKind::SupervisionLoss,
            detail(format!("master failover {from} -> {to}")),
        )),
        EventKind::SlaveSpawned { host } => Some((
            CauseKind::SupervisionLoss,
            detail(format!("slave respawned on {host}")),
        )),
        EventKind::StaleNodeExcluded { node, age } => Some((
            CauseKind::StaleData,
            detail(format!("{node} excluded at age {age}")),
        )),
        EventKind::StalePairsBlended { count } => Some((
            CauseKind::StaleData,
            detail(format!("{count} stale pairs blended")),
        )),
        EventKind::AllocDeferred { job, reason } => {
            let kind = if reason.contains("head reservation")
                || reason.contains("insufficient free capacity")
                || reason.contains("fully reserved")
            {
                CauseKind::OversizedReservation
            } else {
                CauseKind::QueuePressure
            };
            Some((kind, detail(format!("{job} deferred: {reason}"))))
        }
        EventKind::JobRejected { job, depth } => Some((
            CauseKind::QueuePressure,
            detail(format!("{job} rejected at depth {depth}")),
        )),
        EventKind::JobShed { job, depth } => Some((
            CauseKind::QueuePressure,
            detail(format!("{job} shed at depth {depth}")),
        )),
        EventKind::AllocGranted { job, nodes, cost } => Some((
            CauseKind::LeasePlacement,
            detail(format!("{job} placed on {nodes} nodes (cost {cost:.3})")),
        )),
        _ => None,
    }
}

struct Bucket {
    total: usize,
    refs: Vec<EvidenceRef>,
    latest_at: SimTime,
    fault_factor: f64,
}

/// Analyze the trigger at `trigger_seq` over a backward-looking `window`.
/// Returns `None` when the seq is not a retained anomaly/breach event.
pub fn analyze(obs: &Obs, trigger_seq: u64, window: Duration) -> Option<RcaReport> {
    let events = obs.journal.events();
    let trigger = events.iter().find(|e| e.seq == trigger_seq)?;
    let (label, detector, metric, traces) = match &trigger.kind {
        EventKind::AnomalyDetected {
            detector,
            metric,
            traces,
            ..
        } => (
            format!("anomaly:{detector}"),
            detector.clone(),
            metric.clone(),
            traces.clone(),
        ),
        EventKind::SloBreached {
            slo,
            metric,
            traces,
            ..
        } => (
            format!("slo:{slo}"),
            slo.clone(),
            metric.clone(),
            traces.clone(),
        ),
        _ => return None,
    };
    let window_end = trigger.at;
    let window_start =
        SimTime::from_micros(window_end.as_micros().saturating_sub(window.as_micros()));
    // evidence is truncated when the ring evicted events that would have
    // fallen inside the window
    let truncated = obs.journal.evicted_watermark() > 0
        && obs
            .journal
            .oldest_retained_at()
            .is_none_or(|oldest| oldest > window_start);

    let mut buckets: Vec<(CauseKind, Bucket)> = Vec::new();
    for event in &events {
        if event.seq >= trigger_seq || event.at < window_start || event.at > window_end {
            continue;
        }
        let Some((kind, det)) = classify(event) else {
            continue;
        };
        let factor = match &event.kind {
            EventKind::FaultApplied { target, .. } => fault_target_factor(&detector, target),
            _ => 1.0,
        };
        let bucket = match buckets.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, b)) => b,
            None => {
                buckets.push((
                    kind,
                    Bucket {
                        total: 0,
                        refs: Vec::new(),
                        latest_at: event.at,
                        fault_factor: 1.0,
                    },
                ));
                &mut buckets.last_mut().expect("just pushed").1
            }
        };
        bucket.total += 1;
        bucket.latest_at = bucket.latest_at.max(event.at);
        bucket.fault_factor = bucket.fault_factor.max(factor);
        bucket.refs.push(EvidenceRef {
            seq: event.seq,
            at: event.at,
            kind: event.kind.name().to_string(),
            detail: det,
        });
        if bucket.refs.len() > MAX_EVIDENCE_REFS {
            bucket.refs.remove(0);
        }
    }

    let window_span = window_end.since(window_start).as_secs_f64().max(1e-9);
    let mut causes: Vec<Cause> = buckets
        .into_iter()
        .map(|(kind, b)| {
            // corroboration: more independent evidence raises confidence
            let corroboration = 1.0 + 0.05 * ((b.total - 1).min(8) as f64);
            // recency: evidence right before the trigger beats stale echoes
            let gap = window_end.since(b.latest_at).as_secs_f64();
            let recency = 1.0 + 0.2 * (1.0 - (gap / window_span).clamp(0.0, 1.0));
            let score = kind.base_weight()
                * relevance(&detector, kind)
                * b.fault_factor
                * corroboration
                * recency;
            let summary = format!(
                "{} event(s) in the window, latest at {} ({}s before the trigger)",
                b.total,
                b.latest_at,
                gap.round()
            );
            Cause {
                kind,
                score,
                summary,
                evidence_total: b.total,
                evidence: b.refs,
            }
        })
        .collect();
    causes.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.kind.cmp(&b.kind)));

    Some(RcaReport {
        trigger_seq,
        trigger: label,
        detector,
        metric,
        window_start,
        window_end,
        truncated,
        traces,
        causes,
    })
}

/// Analyze the most recent retained anomaly/breach event, if any.
pub fn analyze_latest(obs: &Obs, window: Duration) -> Option<RcaReport> {
    let seq = obs
        .journal
        .events()
        .iter()
        .rev()
        .find(|e| {
            matches!(
                e.kind,
                EventKind::AnomalyDetected { .. } | EventKind::SloBreached { .. }
            )
        })
        .map(|e| e.seq)?;
    analyze(obs, seq, window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Severity;

    fn obs() -> Obs {
        Obs::new()
    }

    fn emit(obs: &Obs, at_s: u64, kind: EventKind) {
        obs.journal
            .record(Severity::Warn, SimTime::from_secs(at_s), kind);
    }

    fn trigger_surge(obs: &Obs, at_s: u64) -> u64 {
        emit(
            obs,
            at_s,
            EventKind::AnomalyDetected {
                detector: "staleness_surge".into(),
                value: 0.25,
                threshold: 0.125,
                metric: "loads_stale_fraction".into(),
                traces: vec![TraceId::for_job(3)],
            },
        );
        obs.journal.total_recorded() - 1
    }

    #[test]
    fn fault_injection_tops_a_staleness_surge() {
        let o = obs();
        emit(
            &o,
            400,
            EventKind::FaultApplied {
                target: "daemon:bandwidth".into(),
                action: "kill".into(),
            },
        );
        emit(
            &o,
            430,
            EventKind::StaleNodeExcluded {
                node: nlrm_topology::NodeId(3),
                age: Duration::from_secs(90),
            },
        );
        let seq = trigger_surge(&o, 460);
        let report = analyze(&o, seq, Duration::from_secs(300)).expect("report");
        assert_eq!(report.detector, "staleness_surge");
        assert_eq!(report.metric, "loads_stale_fraction");
        assert_eq!(report.traces, vec![TraceId::for_job(3)]);
        assert!(!report.truncated);
        let top = report.top_cause().expect("causes found");
        assert_eq!(top.kind, CauseKind::FaultInjection);
        assert!(report.causes.iter().any(|c| c.kind == CauseKind::StaleData));
        assert!(crate::json::validate(&report.to_json()).is_ok());
        assert!(report.render().contains("#1 fault_injection"));
    }

    #[test]
    fn reservation_tops_a_starvation_with_no_faults() {
        let o = obs();
        for i in 0..3 {
            emit(
                &o,
                500 + i * 30,
                EventKind::AllocDeferred {
                    job: format!("md16-{i}"),
                    reason: "head reservation: job 0 holds 64 procs until t=900s; backfill could delay it".into(),
                },
            );
        }
        emit(
            &o,
            520,
            EventKind::AllocGranted {
                job: "small".into(),
                nodes: 2,
                cost: 0.5,
            },
        );
        emit(
            &o,
            600,
            EventKind::AnomalyDetected {
                detector: "starvation".into(),
                value: 700.0,
                threshold: 600.0,
                metric: "broker_oldest_wait_secs".into(),
                traces: vec![],
            },
        );
        let seq = o.journal.total_recorded() - 1;
        let report = analyze(&o, seq, Duration::from_secs(600)).expect("report");
        assert_eq!(
            report.top_cause().unwrap().kind,
            CauseKind::OversizedReservation
        );
        assert_eq!(report.top_cause().unwrap().evidence_total, 3);
    }

    #[test]
    fn lease_placement_tops_a_load_spike() {
        let o = obs();
        emit(
            &o,
            800,
            EventKind::AllocGranted {
                job: "big-32".into(),
                nodes: 8,
                cost: 1.2,
            },
        );
        emit(
            &o,
            830,
            EventKind::AnomalyDetected {
                detector: "load_spike".into(),
                value: 9.0,
                threshold: 2.0,
                metric: "cluster_mean_cpu_load".into(),
                traces: vec![],
            },
        );
        let seq = o.journal.total_recorded() - 1;
        let report = analyze(&o, seq, Duration::from_secs(300)).expect("report");
        assert_eq!(report.top_cause().unwrap().kind, CauseKind::LeasePlacement);
    }

    #[test]
    fn events_outside_the_window_are_ignored() {
        let o = obs();
        emit(
            &o,
            10,
            EventKind::FaultApplied {
                target: "master".into(),
                action: "kill".into(),
            },
        );
        let seq = trigger_surge(&o, 1000);
        let report = analyze(&o, seq, Duration::from_secs(300)).expect("report");
        assert!(
            report.causes.is_empty(),
            "t=10 fault is outside [700,1000]: {report:?}"
        );
        assert!(report.top_cause().is_none());
    }

    #[test]
    fn truncation_is_reported_when_the_ring_evicted_the_window() {
        let o = Obs::with_capacity(4);
        emit(
            &o,
            100,
            EventKind::FaultApplied {
                target: "master".into(),
                action: "kill".into(),
            },
        );
        for i in 0..6 {
            emit(
                &o,
                110 + i,
                EventKind::DaemonTick {
                    daemon: "livehosts".into(),
                },
            );
        }
        let seq = trigger_surge(&o, 130);
        let report = analyze(&o, seq, Duration::from_secs(100)).expect("report");
        assert!(report.truncated, "fault at t=100 was evicted");
    }

    #[test]
    fn non_trigger_seq_yields_none() {
        let o = obs();
        emit(
            &o,
            5,
            EventKind::DaemonTick {
                daemon: "livehosts".into(),
            },
        );
        assert!(analyze(&o, 0, Duration::from_secs(60)).is_none());
        assert!(analyze(&o, 99, Duration::from_secs(60)).is_none());
        assert!(analyze_latest(&o, Duration::from_secs(60)).is_none());
    }

    #[test]
    fn analyze_latest_finds_the_newest_trigger() {
        let o = obs();
        trigger_surge(&o, 100);
        emit(
            &o,
            150,
            EventKind::FaultApplied {
                target: "node:n2".into(),
                action: "kill".into(),
            },
        );
        let last = trigger_surge(&o, 200);
        let report = analyze_latest(&o, Duration::from_secs(300)).expect("report");
        assert_eq!(report.trigger_seq, last);
    }
}
