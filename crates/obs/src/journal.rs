//! The virtual-time structured event journal.
//!
//! A [`Journal`] is a bounded ring of typed [`Event`]s. Every event carries
//! its virtual timestamp, a severity, a typed [`EventKind`] (with the
//! node/daemon identity baked into the variant), and optional free-form
//! key/value fields. Events are stored strictly in emission order — two
//! events at the same [`SimTime`] keep the order they were recorded in —
//! and the ring drops the *oldest* events once capacity is reached, so
//! memory stays bounded over arbitrarily long scenarios.
//!
//! The journal is a cheap clonable handle (`Arc` inside): the monitor
//! runtime, the central monitor, load derivation, and the broker all write
//! into the same ring.

use crate::json;
use crate::lock;
use crate::metrics::Counter;
use crate::recorder::Recorder;
use crate::span::TraceId;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// High-volume trace detail (daemon ticks, publishes, backoff checks).
    Debug,
    /// Normal lifecycle (allocations granted, slaves spawned).
    Info,
    /// Degradation handled (relaunches, failovers, staleness exclusions).
    Warn,
    /// Lost capability (allocation failures).
    Error,
}

impl Severity {
    /// Lower-case label, as exported.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What happened. Variants carry the identity of the thing it happened to.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// One scheduled daemon tick ran in the monitor runtime.
    DaemonTick {
        /// Daemon label (e.g. `livehosts`, `nodestate(n3)`).
        daemon: String,
    },
    /// A daemon wrote a fresh record to the shared store.
    Publish {
        /// Daemon label.
        daemon: String,
        /// Store path written.
        path: String,
    },
    /// A scheduled fault (kill/hang/delay) was applied to a target.
    FaultApplied {
        /// Target label (daemon, node, master, slave).
        target: String,
        /// Action label (`kill`, `hang(120s)`, `delay(60s)`).
        action: String,
    },
    /// The central monitor relaunched a dead or hung daemon.
    DaemonRelaunched {
        /// Daemon label.
        daemon: String,
        /// Relaunches issued without an observed healthy publication since.
        strikes: u32,
    },
    /// A relaunch was withheld by the crash-loop backoff.
    RelaunchSuppressed {
        /// Daemon label.
        daemon: String,
        /// Virtual time the next relaunch becomes allowed.
        until: SimTime,
    },
    /// The slave promoted itself to master.
    Failover {
        /// Host of the dead master.
        from: NodeId,
        /// Host of the promoted instance.
        to: NodeId,
    },
    /// A fresh slave instance was spawned.
    SlaveSpawned {
        /// Host it runs on.
        host: NodeId,
    },
    /// Load derivation dropped a node whose newest sample was over-age.
    StaleNodeExcluded {
        /// The excluded node.
        node: NodeId,
        /// Sample age at the decision.
        age: Duration,
    },
    /// Load derivation blended stale pair measurements toward the penalty.
    StalePairsBlended {
        /// Number of pairs blended in this derivation.
        count: usize,
    },
    /// A job asked the broker/allocator for nodes.
    AllocRequested {
        /// Job display name.
        job: String,
        /// Requested process count.
        procs: u32,
    },
    /// A job was granted an allocation.
    AllocGranted {
        /// Job display name.
        job: String,
        /// Distinct nodes granted.
        nodes: usize,
        /// Eq. 4 cost of the winning group.
        cost: f64,
    },
    /// A job stayed queued this scheduling pass.
    AllocDeferred {
        /// Job display name.
        job: String,
        /// Why it did not start.
        reason: String,
    },
    /// An allocation attempt failed outright.
    AllocFailed {
        /// Job display name.
        job: String,
        /// The error.
        reason: String,
    },
    /// A submission bounced off admission control (queue at capacity).
    JobRejected {
        /// Job display name.
        job: String,
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// A queued job was evicted by admission control to admit a newer one.
    JobShed {
        /// Display name of the evicted job.
        job: String,
        /// Queue depth after the shed.
        depth: usize,
    },
    /// A job was cancelled by its owner.
    JobCancelled {
        /// Job display name.
        job: String,
        /// Whether it was running (reservations released) or just queued.
        was_running: bool,
    },
    /// A telemetry detector flagged an abnormal health signal.
    AnomalyDetected {
        /// Detector label (e.g. `staleness_surge`, `load_spike`).
        detector: String,
        /// The observed signal value.
        value: f64,
        /// The threshold it exceeded.
        threshold: f64,
        /// The registry metric the detector derives its signal from.
        metric: String,
        /// Traces with open spans at detection time (jobs in flight).
        traces: Vec<TraceId>,
    },
    /// A service-level objective's attainment dropped below target.
    SloBreached {
        /// SLO name (e.g. `queue_wait_p99`).
        slo: String,
        /// Rolling-window attainment at the breach.
        attainment: f64,
        /// The declared target attainment.
        target: f64,
        /// The registry metric the objective measures.
        metric: String,
        /// Traces with open spans at breach time (jobs in flight).
        traces: Vec<TraceId>,
    },
}

/// Encode a trace list as a JSON array of `"t<n>"` strings.
fn traces_json(traces: &[TraceId]) -> String {
    let items: Vec<String> = traces
        .iter()
        .map(|t| json::string(&t.to_string()))
        .collect();
    json::array(&items)
}

/// Render a trace list as `t1+t2+…` (or `-` when empty) for timelines.
fn traces_label(traces: &[TraceId]) -> String {
    if traces.is_empty() {
        return "-".to_string();
    }
    traces
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join("+")
}

impl EventKind {
    /// Stable snake_case name of the variant, used for export and counting.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DaemonTick { .. } => "daemon_tick",
            EventKind::Publish { .. } => "publish",
            EventKind::FaultApplied { .. } => "fault_applied",
            EventKind::DaemonRelaunched { .. } => "daemon_relaunched",
            EventKind::RelaunchSuppressed { .. } => "relaunch_suppressed",
            EventKind::Failover { .. } => "failover",
            EventKind::SlaveSpawned { .. } => "slave_spawned",
            EventKind::StaleNodeExcluded { .. } => "stale_node_excluded",
            EventKind::StalePairsBlended { .. } => "stale_pairs_blended",
            EventKind::AllocRequested { .. } => "alloc_requested",
            EventKind::AllocGranted { .. } => "alloc_granted",
            EventKind::AllocDeferred { .. } => "alloc_deferred",
            EventKind::AllocFailed { .. } => "alloc_failed",
            EventKind::JobRejected { .. } => "job_rejected",
            EventKind::JobShed { .. } => "job_shed",
            EventKind::JobCancelled { .. } => "job_cancelled",
            EventKind::AnomalyDetected { .. } => "anomaly_detected",
            EventKind::SloBreached { .. } => "slo_breached",
        }
    }

    /// The variant's payload as `(key, already-encoded JSON value)` pairs.
    fn json_fields(&self) -> Vec<(&'static str, String)> {
        match self {
            EventKind::DaemonTick { daemon } => vec![("daemon", json::string(daemon))],
            EventKind::Publish { daemon, path } => {
                vec![
                    ("daemon", json::string(daemon)),
                    ("path", json::string(path)),
                ]
            }
            EventKind::FaultApplied { target, action } => vec![
                ("target", json::string(target)),
                ("action", json::string(action)),
            ],
            EventKind::DaemonRelaunched { daemon, strikes } => vec![
                ("daemon", json::string(daemon)),
                ("strikes", strikes.to_string()),
            ],
            EventKind::RelaunchSuppressed { daemon, until } => vec![
                ("daemon", json::string(daemon)),
                ("until_s", json::num(until.as_secs_f64())),
            ],
            EventKind::Failover { from, to } => vec![
                ("from", json::string(&from.to_string())),
                ("to", json::string(&to.to_string())),
            ],
            EventKind::SlaveSpawned { host } => {
                vec![("host", json::string(&host.to_string()))]
            }
            EventKind::StaleNodeExcluded { node, age } => vec![
                ("node", json::string(&node.to_string())),
                ("age_s", json::num(age.as_secs_f64())),
            ],
            EventKind::StalePairsBlended { count } => vec![("count", count.to_string())],
            EventKind::AllocRequested { job, procs } => {
                vec![("job", json::string(job)), ("procs", procs.to_string())]
            }
            EventKind::AllocGranted { job, nodes, cost } => vec![
                ("job", json::string(job)),
                ("nodes", nodes.to_string()),
                ("cost", json::num(*cost)),
            ],
            EventKind::AllocDeferred { job, reason } => {
                vec![("job", json::string(job)), ("reason", json::string(reason))]
            }
            EventKind::AllocFailed { job, reason } => {
                vec![("job", json::string(job)), ("reason", json::string(reason))]
            }
            EventKind::JobRejected { job, depth } => {
                vec![("job", json::string(job)), ("depth", depth.to_string())]
            }
            EventKind::JobShed { job, depth } => {
                vec![("job", json::string(job)), ("depth", depth.to_string())]
            }
            EventKind::JobCancelled { job, was_running } => vec![
                ("job", json::string(job)),
                ("was_running", was_running.to_string()),
            ],
            EventKind::AnomalyDetected {
                detector,
                value,
                threshold,
                metric,
                traces,
            } => vec![
                ("detector", json::string(detector)),
                ("value", json::num(*value)),
                ("threshold", json::num(*threshold)),
                ("metric", json::string(metric)),
                ("traces", traces_json(traces)),
            ],
            EventKind::SloBreached {
                slo,
                attainment,
                target,
                metric,
                traces,
            } => vec![
                ("slo", json::string(slo)),
                ("attainment", json::num(*attainment)),
                ("target", json::num(*target)),
                ("metric", json::string(metric)),
                ("traces", traces_json(traces)),
            ],
        }
    }

    /// One-line human rendering of the payload.
    fn describe(&self) -> String {
        match self {
            EventKind::DaemonTick { daemon } => format!("daemon={daemon}"),
            EventKind::Publish { daemon, path } => format!("daemon={daemon} path={path}"),
            EventKind::FaultApplied { target, action } => {
                format!("target={target} action={action}")
            }
            EventKind::DaemonRelaunched { daemon, strikes } => {
                format!("daemon={daemon} strikes={strikes}")
            }
            EventKind::RelaunchSuppressed { daemon, until } => {
                format!("daemon={daemon} until={until}")
            }
            EventKind::Failover { from, to } => format!("from={from} to={to}"),
            EventKind::SlaveSpawned { host } => format!("host={host}"),
            EventKind::StaleNodeExcluded { node, age } => format!("node={node} age={age}"),
            EventKind::StalePairsBlended { count } => format!("count={count}"),
            EventKind::AllocRequested { job, procs } => format!("job={job} procs={procs}"),
            EventKind::AllocGranted { job, nodes, cost } => {
                format!("job={job} nodes={nodes} cost={cost:.4}")
            }
            EventKind::AllocDeferred { job, reason } => format!("job={job} reason={reason}"),
            EventKind::AllocFailed { job, reason } => format!("job={job} reason={reason}"),
            EventKind::JobRejected { job, depth } => format!("job={job} depth={depth}"),
            EventKind::JobShed { job, depth } => format!("job={job} depth={depth}"),
            EventKind::JobCancelled { job, was_running } => {
                format!("job={job} was_running={was_running}")
            }
            EventKind::AnomalyDetected {
                detector,
                value,
                threshold,
                metric,
                traces,
            } => format!(
                "detector={detector} value={value:.4} threshold={threshold:.4} \
                 metric={metric} traces={}",
                traces_label(traces)
            ),
            EventKind::SloBreached {
                slo,
                attainment,
                target,
                metric,
                traces,
            } => format!(
                "slo={slo} attainment={attainment:.4} target={target:.4} \
                 metric={metric} traces={}",
                traces_label(traces)
            ),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Emission order over the journal's whole lifetime (strictly
    /// increasing, including events later dropped by the ring).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: SimTime,
    /// Severity.
    pub severity: Severity,
    /// Typed payload.
    pub kind: EventKind,
    /// Extra free-form key/value fields.
    pub fields: Vec<(String, String)>,
}

impl Event {
    /// Export as one JSON object.
    pub fn to_json(&self) -> String {
        let mut pairs: Vec<(&str, String)> = vec![
            ("seq", self.seq.to_string()),
            ("t_s", json::num(self.at.as_secs_f64())),
            ("severity", json::string(self.severity.label())),
            ("kind", json::string(self.kind.name())),
        ];
        pairs.extend(self.kind.json_fields());
        let extra: Vec<(&str, String)> = self
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), json::string(v)))
            .collect();
        pairs.extend(extra);
        json::object(&pairs)
    }

    /// One human-readable timeline line.
    pub fn render(&self) -> String {
        let mut line = format!(
            "t={:>12} {:<5} {:<20} {}",
            format!("{}", self.at),
            self.severity.label().to_uppercase(),
            self.kind.name(),
            self.kind.describe(),
        );
        for (k, v) in &self.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        line
    }
}

#[derive(Debug)]
struct Inner {
    capacity: usize,
    min_severity: Severity,
    next_seq: u64,
    /// Events evicted by the ring (recorded, then pushed out).
    dropped: u64,
    /// Events rejected by the severity filter (never recorded).
    filtered: u64,
    events: VecDeque<Event>,
    /// Bumped once per eviction when attached (`journal_evicted_total`).
    evicted_counter: Option<Counter>,
    /// Fed every accepted event's digest when attached and enabled.
    recorder: Option<Recorder>,
}

/// Bounded-memory structured event journal (cheap clonable handle).
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
}

impl Journal {
    /// A journal retaining at most `capacity` events (oldest dropped first),
    /// recording every severity. Capacity 0 is clamped to 1.
    pub fn new(capacity: usize) -> Self {
        Journal {
            inner: Arc::new(Mutex::new(Inner {
                capacity: capacity.max(1),
                min_severity: Severity::Debug,
                next_seq: 0,
                dropped: 0,
                filtered: 0,
                events: VecDeque::new(),
                evicted_counter: None,
                recorder: None,
            })),
        }
    }

    /// Bump `counter` once per future ring eviction, so dashboards (and
    /// RCA's "evidence truncated" verdict) can see silent evidence loss.
    pub fn attach_eviction_counter(&self, counter: Counter) {
        lock::lock(&self.inner).evicted_counter = Some(counter);
    }

    /// Feed every future accepted event to `recorder` (which digests it
    /// for replay comparison; a no-op while the recorder is disabled).
    pub fn attach_recorder(&self, recorder: Recorder) {
        lock::lock(&self.inner).recorder = Some(recorder);
    }

    /// Drop future events below `min` (already-recorded events stay).
    pub fn set_min_severity(&self, min: Severity) {
        lock::lock(&self.inner).min_severity = min;
    }

    /// The current severity floor.
    pub fn min_severity(&self) -> Severity {
        lock::lock(&self.inner).min_severity
    }

    /// Would an event at `severity` be recorded right now?
    pub fn accepts(&self, severity: Severity) -> bool {
        severity >= lock::lock(&self.inner).min_severity
    }

    /// Record an event. Returns `false` if the severity filter rejected it.
    pub fn record(&self, severity: Severity, at: SimTime, kind: EventKind) -> bool {
        self.record_kv(severity, at, kind, Vec::new())
    }

    /// Record an event with extra key/value fields.
    pub fn record_kv(
        &self,
        severity: Severity,
        at: SimTime,
        kind: EventKind,
        fields: Vec<(String, String)>,
    ) -> bool {
        let mut inner = lock::lock(&self.inner);
        if severity < inner.min_severity {
            inner.filtered += 1;
            return false;
        }
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let event = Event {
            seq,
            at,
            severity,
            kind,
            fields,
        };
        if let Some(recorder) = &inner.recorder {
            recorder.note_journal_event(&event);
        }
        inner.events.push_back(event);
        while inner.events.len() > inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
            if let Some(counter) = &inner.evicted_counter {
                counter.inc();
            }
        }
        true
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        lock::lock(&self.inner).events.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        lock::lock(&self.inner).capacity
    }

    /// Events recorded over the journal's lifetime (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        let inner = lock::lock(&self.inner);
        inner.next_seq
    }

    /// Events evicted by the ring.
    pub fn dropped(&self) -> u64 {
        lock::lock(&self.inner).dropped
    }

    /// Eviction watermark: the sequence number of the oldest *retained*
    /// event. Seqs are dense (filtered events never get one) and the ring
    /// evicts oldest-first, so everything below this seq is gone. Zero
    /// means nothing has been evicted.
    pub fn evicted_watermark(&self) -> u64 {
        lock::lock(&self.inner).dropped
    }

    /// Virtual timestamp of the oldest retained event, if any. Evidence
    /// older than this has been evicted by the ring.
    pub fn oldest_retained_at(&self) -> Option<SimTime> {
        lock::lock(&self.inner).events.front().map(|e| e.at)
    }

    /// The newest `n` retained events, in emission order (cheaper than
    /// cloning the whole ring via [`Journal::events`]).
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let inner = lock::lock(&self.inner);
        let skip = inner.events.len().saturating_sub(n);
        inner.events.iter().skip(skip).cloned().collect()
    }

    /// Events rejected by the severity filter.
    pub fn filtered(&self) -> u64 {
        lock::lock(&self.inner).filtered
    }

    /// Snapshot of the retained events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        lock::lock(&self.inner).events.iter().cloned().collect()
    }

    /// Retained events of one kind (by [`EventKind::name`]).
    pub fn events_of(&self, kind_name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.kind.name() == kind_name)
            .collect()
    }

    /// Count of retained events of one kind.
    pub fn count_of(&self, kind_name: &str) -> usize {
        lock::lock(&self.inner)
            .events
            .iter()
            .filter(|e| e.kind.name() == kind_name)
            .count()
    }

    /// Export the retained events as JSON lines (one object per line).
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }

    /// Export the retained events as one JSON array.
    pub fn to_json_array(&self) -> String {
        let items: Vec<String> = self.events().iter().map(Event::to_json).collect();
        json::array(&items)
    }

    /// Human-readable timeline of the retained events.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

impl Default for Journal {
    /// A journal with a 4096-event ring.
    fn default() -> Self {
        Journal::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(d: &str) -> EventKind {
        EventKind::DaemonTick { daemon: d.into() }
    }

    #[test]
    fn records_in_emission_order_with_increasing_seq() {
        let j = Journal::new(16);
        let t = SimTime::from_secs(5);
        j.record(Severity::Info, t, tick("a"));
        j.record(Severity::Info, t, tick("b"));
        j.record(Severity::Info, SimTime::from_secs(1), tick("c"));
        let ev = j.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].seq, 0);
        assert_eq!(ev[1].seq, 1);
        assert_eq!(ev[2].seq, 2);
        // equal-SimTime events keep emission order
        assert_eq!(ev[0].kind, tick("a"));
        assert_eq!(ev[1].kind, tick("b"));
    }

    #[test]
    fn ring_drops_oldest() {
        let j = Journal::new(3);
        for i in 0..10u64 {
            j.record(Severity::Info, SimTime::from_secs(i), tick(&i.to_string()));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        assert_eq!(j.total_recorded(), 10);
        let seqs: Vec<u64> = j.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn severity_filter_rejects_below_floor() {
        let j = Journal::new(8);
        j.set_min_severity(Severity::Warn);
        assert!(!j.record(Severity::Debug, SimTime::ZERO, tick("a")));
        assert!(!j.record(Severity::Info, SimTime::ZERO, tick("b")));
        assert!(j.record(Severity::Warn, SimTime::ZERO, tick("c")));
        assert!(j.record(Severity::Error, SimTime::ZERO, tick("d")));
        assert_eq!(j.len(), 2);
        assert_eq!(j.filtered(), 2);
        assert!(j.accepts(Severity::Error));
        assert!(!j.accepts(Severity::Info));
    }

    #[test]
    fn severity_order_is_total() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn export_formats_are_well_formed() {
        let j = Journal::new(8);
        j.record_kv(
            Severity::Warn,
            SimTime::from_secs(700),
            EventKind::Failover {
                from: NodeId(0),
                to: NodeId(1),
            },
            vec![("incarnation".into(), "2".into())],
        );
        let json = j.to_json_lines();
        assert!(json.contains("\"kind\":\"failover\""));
        assert!(json.contains("\"from\":\"n0\""));
        assert!(json.contains("\"incarnation\":\"2\""));
        let arr = j.to_json_array();
        assert!(arr.starts_with('[') && arr.trim_end().ends_with(']'));
        let timeline = j.render_timeline();
        assert!(timeline.contains("failover"));
        assert!(timeline.contains("from=n0 to=n1"));
    }

    #[test]
    fn counts_by_kind() {
        let j = Journal::new(8);
        j.record(Severity::Info, SimTime::ZERO, tick("a"));
        j.record(
            Severity::Warn,
            SimTime::ZERO,
            EventKind::StaleNodeExcluded {
                node: NodeId(2),
                age: Duration::from_secs(90),
            },
        );
        assert_eq!(j.count_of("daemon_tick"), 1);
        assert_eq!(j.count_of("stale_node_excluded"), 1);
        assert_eq!(j.events_of("stale_node_excluded").len(), 1);
        assert_eq!(j.count_of("failover"), 0);
    }

    #[test]
    fn eviction_counter_and_watermark_track_the_ring() {
        let j = Journal::new(4);
        let counter = crate::metrics::Metrics::new().counter("journal_evicted_total");
        j.attach_eviction_counter(counter.clone());
        for i in 0..10u64 {
            j.record(Severity::Info, SimTime::from_secs(i), tick(&i.to_string()));
        }
        assert_eq!(counter.get(), 6);
        assert_eq!(j.evicted_watermark(), 6);
        // the watermark is exactly the first retained seq
        assert_eq!(j.events()[0].seq, 6);
        assert_eq!(j.oldest_retained_at(), Some(SimTime::from_secs(6)));
        assert_eq!(j.tail(2).iter().map(|e| e.seq).collect::<Vec<_>>(), [8, 9]);
    }

    #[test]
    fn nothing_evicted_means_zero_watermark() {
        let j = Journal::new(8);
        j.record(Severity::Info, SimTime::from_secs(3), tick("a"));
        assert_eq!(j.evicted_watermark(), 0);
        assert_eq!(j.oldest_retained_at(), Some(SimTime::from_secs(3)));
        assert!(Journal::new(8).oldest_retained_at().is_none());
    }

    #[test]
    fn anomaly_event_carries_metric_and_traces() {
        let j = Journal::new(8);
        j.record(
            Severity::Warn,
            SimTime::from_secs(60),
            EventKind::AnomalyDetected {
                detector: "staleness_surge".into(),
                value: 0.25,
                threshold: 0.125,
                metric: "loads_stale_fraction".into(),
                traces: vec![TraceId::for_job(3), TraceId::for_job(7)],
            },
        );
        let json = j.to_json_lines();
        assert!(json.contains("\"metric\":\"loads_stale_fraction\""));
        assert!(json.contains("\"traces\":[\"t4\",\"t8\"]"));
        assert!(crate::json::validate(j.events()[0].to_json().as_str()).is_ok());
        let line = j.render_timeline();
        assert!(line.contains("metric=loads_stale_fraction"));
        assert!(line.contains("traces=t4+t8"));
    }

    #[test]
    fn slo_event_carries_metric_and_traces() {
        let j = Journal::new(8);
        j.record(
            Severity::Warn,
            SimTime::from_secs(90),
            EventKind::SloBreached {
                slo: "queue_wait_p99".into(),
                attainment: 0.9,
                target: 0.95,
                metric: "broker_job_wait_secs".into(),
                traces: vec![],
            },
        );
        let json = j.to_json_lines();
        assert!(json.contains("\"metric\":\"broker_job_wait_secs\""));
        assert!(json.contains("\"traces\":[]"));
        assert!(j.render_timeline().contains("traces=-"));
    }
}
