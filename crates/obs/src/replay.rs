//! Replay verification: compare a recorded run against a re-driven one.
//!
//! The simulator is deterministic in virtual time, so re-driving a scenario
//! from a [`Record`]'s header must reproduce the
//! *exact* same journal and metrics. [`compare`] checks that claim
//! digest-by-digest, in causal order — header, arrivals, faults, input
//! streams, journal events, journal length, metrics registry — and reports
//! the **first** divergence it finds, which is the earliest point the two
//! runs' histories split (everything after the first divergent input or
//! event is cascade, not cause).
//!
//! The re-driving itself lives in the bench layer (`bench::scenario`
//! rebuilds a scenario from a record header); this module stays pure data
//! so `nlrm-obs` depends on nothing above it.

use crate::json;
use crate::recorder::Record;

/// Which section of the record diverged first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Scenario parameters differ — the runs were not comparable at all.
    Header,
    /// The job arrival streams split.
    Arrival,
    /// The fault plans split.
    Fault,
    /// A probe/gossip round was consumed differently.
    Stream,
    /// A journal event differs (or one run stopped journaling early).
    JournalEvent,
    /// Same per-event digests but different totals (should be unreachable
    /// when per-event digests are captured; kept as a belt-and-braces
    /// check).
    JournalLength,
    /// Everything matched except the final metrics registry.
    Metrics,
}

impl DivergenceKind {
    /// Stable snake_case label.
    pub fn label(self) -> &'static str {
        match self {
            DivergenceKind::Header => "header",
            DivergenceKind::Arrival => "arrival",
            DivergenceKind::Fault => "fault",
            DivergenceKind::Stream => "stream",
            DivergenceKind::JournalEvent => "journal_event",
            DivergenceKind::JournalLength => "journal_length",
            DivergenceKind::Metrics => "metrics",
        }
    }
}

/// The first point where the recorded and replayed runs split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Which section split.
    pub kind: DivergenceKind,
    /// Index into that section (journal divergences report the event seq).
    pub index: u64,
    /// What the original record holds there.
    pub expected: String,
    /// What the replay produced there.
    pub actual: String,
}

impl Divergence {
    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        json::object(&[
            ("kind", json::string(self.kind.label())),
            ("index", self.index.to_string()),
            ("expected", json::string(&self.expected)),
            ("actual", json::string(&self.actual)),
        ])
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "first divergence at {}[{}]: expected {} != actual {}",
            self.kind.label(),
            self.index,
            self.expected,
            self.actual
        )
    }
}

/// The outcome of one record-vs-replay comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Arrivals compared (the shorter stream's length on divergence).
    pub checked_arrivals: u64,
    /// Faults compared.
    pub checked_faults: u64,
    /// Stream rounds compared.
    pub checked_streams: u64,
    /// Journal events compared.
    pub checked_events: u64,
    /// The first split, if any. `None` means bit-identical replay.
    pub divergence: Option<Divergence>,
}

impl ReplayReport {
    /// Did the replay reproduce the record exactly?
    pub fn is_identical(&self) -> bool {
        self.divergence.is_none()
    }

    /// Export as a JSON object.
    pub fn to_json(&self) -> String {
        json::object(&[
            ("identical", self.is_identical().to_string()),
            ("checked_arrivals", self.checked_arrivals.to_string()),
            ("checked_faults", self.checked_faults.to_string()),
            ("checked_streams", self.checked_streams.to_string()),
            ("checked_events", self.checked_events.to_string()),
            (
                "divergence",
                self.divergence
                    .as_ref()
                    .map_or("null".into(), Divergence::to_json),
            ),
        ])
    }
}

fn header_divergence(expected: &Record, actual: &Record) -> Option<Divergence> {
    let e = &expected.header;
    let a = &actual.header;
    let fields: [(&str, String, String); 9] = [
        (
            "version",
            expected.version.to_string(),
            actual.version.to_string(),
        ),
        ("seed", e.seed.to_string(), a.seed.to_string()),
        ("nodes", e.nodes.to_string(), a.nodes.to_string()),
        (
            "checkpoints",
            format!("{:?}", e.checkpoints),
            format!("{:?}", a.checkpoints),
        ),
        ("faulted", e.faulted.to_string(), a.faulted.to_string()),
        ("huge", e.submit_huge.to_string(), a.submit_huge.to_string()),
        (
            "telemetry",
            e.telemetry.to_string(),
            a.telemetry.to_string(),
        ),
        (
            "lease_load",
            e.lease_load.to_string(),
            a.lease_load.to_string(),
        ),
        (
            "complete_prev",
            e.complete_prev.to_string(),
            a.complete_prev.to_string(),
        ),
    ];
    for (i, (name, ev, av)) in fields.iter().enumerate() {
        if ev != av {
            return Some(Divergence {
                kind: DivergenceKind::Header,
                index: i as u64,
                expected: format!("{name}={ev}"),
                actual: format!("{name}={av}"),
            });
        }
    }
    None
}

/// Compare `actual` (a replay) against `expected` (the original record),
/// returning the first divergence in causal order. The scenario `label` is
/// deliberately not compared — replays are free to relabel.
pub fn compare(expected: &Record, actual: &Record) -> ReplayReport {
    let mut report = ReplayReport {
        checked_arrivals: 0,
        checked_faults: 0,
        checked_streams: 0,
        checked_events: 0,
        divergence: header_divergence(expected, actual),
    };
    if report.divergence.is_some() {
        return report;
    }

    macro_rules! check_section {
        ($field:ident, $kind:expr, $counter:ident, $render:expr) => {
            let n = expected.$field.len().min(actual.$field.len());
            for i in 0..n {
                report.$counter += 1;
                if expected.$field[i] != actual.$field[i] {
                    report.divergence = Some(Divergence {
                        kind: $kind,
                        index: i as u64,
                        expected: $render(&expected.$field[i]),
                        actual: $render(&actual.$field[i]),
                    });
                    return report;
                }
            }
            if expected.$field.len() != actual.$field.len() {
                let (exp_str, act_str) = if expected.$field.len() > actual.$field.len() {
                    (
                        $render(&expected.$field[n]),
                        format!("<replay ended after {n}>"),
                    )
                } else {
                    (
                        format!("<record ended after {n}>"),
                        $render(&actual.$field[n]),
                    )
                };
                report.divergence = Some(Divergence {
                    kind: $kind,
                    index: n as u64,
                    expected: exp_str,
                    actual: act_str,
                });
                return report;
            }
        };
    }

    check_section!(
        arrivals,
        DivergenceKind::Arrival,
        checked_arrivals,
        |a: &crate::recorder::ArrivalRecord| format!(
            "{}+{}p@{}us",
            a.name,
            a.procs,
            a.at.as_micros()
        )
    );
    check_section!(
        faults,
        DivergenceKind::Fault,
        checked_faults,
        |f: &crate::recorder::FaultRecord| format!(
            "{} {} @{}us",
            f.action,
            f.target,
            f.at.as_micros()
        )
    );
    check_section!(
        streams,
        DivergenceKind::Stream,
        checked_streams,
        |s: &crate::recorder::StreamRecord| format!(
            "{} n={} {:016x} @{}us",
            s.kind,
            s.count,
            s.digest,
            s.at.as_micros()
        )
    );

    // journal events diverge at the seq, not the vec index, so reports
    // point straight at the offending journal line
    let n = expected.journal.len().min(actual.journal.len());
    for i in 0..n {
        report.checked_events += 1;
        if expected.journal[i] != actual.journal[i] {
            report.divergence = Some(Divergence {
                kind: DivergenceKind::JournalEvent,
                index: expected.journal[i].seq,
                expected: format!(
                    "seq={} {} {:016x}",
                    expected.journal[i].seq, expected.journal[i].kind, expected.journal[i].digest
                ),
                actual: format!(
                    "seq={} {} {:016x}",
                    actual.journal[i].seq, actual.journal[i].kind, actual.journal[i].digest
                ),
            });
            return report;
        }
    }
    if expected.journal.len() != actual.journal.len() {
        let (index, exp_str, act_str) = if expected.journal.len() > actual.journal.len() {
            (
                expected.journal[n].seq,
                format!(
                    "seq={} {}",
                    expected.journal[n].seq, expected.journal[n].kind
                ),
                format!("<replay ended after {n} events>"),
            )
        } else {
            (
                actual.journal[n].seq,
                format!("<record ended after {n} events>"),
                format!("seq={} {}", actual.journal[n].seq, actual.journal[n].kind),
            )
        };
        report.divergence = Some(Divergence {
            kind: DivergenceKind::JournalEvent,
            index,
            expected: exp_str,
            actual: act_str,
        });
        return report;
    }
    if expected.journal_len != actual.journal_len {
        report.divergence = Some(Divergence {
            kind: DivergenceKind::JournalLength,
            index: 0,
            expected: expected.journal_len.to_string(),
            actual: actual.journal_len.to_string(),
        });
        return report;
    }
    if expected.metrics_digest != actual.metrics_digest {
        report.divergence = Some(Divergence {
            kind: DivergenceKind::Metrics,
            index: 0,
            expected: format!("{:016x}", expected.metrics_digest),
            actual: format!("{:016x}", actual.metrics_digest),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ArrivalRecord, JournalDigest, Record, StreamRecord};
    use nlrm_sim_core::time::SimTime;

    fn base() -> Record {
        let mut rec = Record::default();
        rec.version = crate::recorder::RECORD_VERSION;
        rec.header.seed = 7;
        rec.header.nodes = 8;
        rec.arrivals = vec![
            ArrivalRecord {
                at: SimTime::from_secs(10),
                name: "a".into(),
                procs: 4,
            },
            ArrivalRecord {
                at: SimTime::from_secs(20),
                name: "b".into(),
                procs: 8,
            },
        ];
        rec.streams = vec![StreamRecord {
            at: SimTime::from_secs(12),
            kind: "probe:latency".into(),
            count: 28,
            digest: 0xabc,
        }];
        rec.journal = vec![
            JournalDigest {
                seq: 0,
                kind: "daemon_tick".into(),
                digest: 1,
            },
            JournalDigest {
                seq: 1,
                kind: "alloc_granted".into(),
                digest: 2,
            },
        ];
        rec.journal_len = 2;
        rec.metrics_digest = 0xfff;
        rec
    }

    #[test]
    fn identical_records_replay_clean() {
        let rec = base();
        let report = compare(&rec, &rec.clone());
        assert!(report.is_identical(), "{report:?}");
        assert_eq!(report.checked_events, 2);
        assert_eq!(report.checked_arrivals, 2);
        assert!(crate::json::validate(&report.to_json()).is_ok());
    }

    #[test]
    fn label_differences_are_not_divergence() {
        let rec = base();
        let mut replay = rec.clone();
        replay.header.label = "replay-of".into();
        assert!(compare(&rec, &replay).is_identical());
    }

    #[test]
    fn header_divergence_reported_before_anything_else() {
        let rec = base();
        let mut other = rec.clone();
        other.header.seed = 8;
        other.journal[0].digest = 99; // also differs, but header wins
        let report = compare(&rec, &other);
        let d = report.divergence.expect("diverged");
        assert_eq!(d.kind, DivergenceKind::Header);
        assert!(d.expected.contains("seed=7"), "{}", d.render());
    }

    #[test]
    fn journal_divergence_reports_the_seq() {
        let rec = base();
        let mut other = rec.clone();
        other.journal[1].digest = 99;
        let report = compare(&rec, &other);
        let d = report.divergence.expect("diverged");
        assert_eq!(d.kind, DivergenceKind::JournalEvent);
        assert_eq!(d.index, 1);
        assert_eq!(report.checked_events, 2, "first event matched first");
    }

    #[test]
    fn shorter_journal_is_a_divergence_at_the_cut() {
        let rec = base();
        let mut other = rec.clone();
        other.journal.pop();
        other.journal_len = 1;
        let report = compare(&rec, &other);
        let d = report.divergence.expect("diverged");
        assert_eq!(d.kind, DivergenceKind::JournalEvent);
        assert_eq!(d.index, 1);
        assert!(d.actual.contains("ended after 1"));
    }

    #[test]
    fn stream_divergence_precedes_journal_divergence() {
        let rec = base();
        let mut other = rec.clone();
        other.streams[0].digest = 0xdef;
        other.journal[0].digest = 99;
        let report = compare(&rec, &other);
        assert_eq!(report.divergence.unwrap().kind, DivergenceKind::Stream);
    }

    #[test]
    fn metrics_divergence_is_last_resort() {
        let rec = base();
        let mut other = rec.clone();
        other.metrics_digest = 0x123;
        let report = compare(&rec, &other);
        let d = report.divergence.unwrap();
        assert_eq!(d.kind, DivergenceKind::Metrics);
        assert_eq!(report.checked_events, 2);
    }

    #[test]
    fn arrival_divergence_on_extra_submission() {
        let rec = base();
        let mut other = rec.clone();
        other.arrivals.push(ArrivalRecord {
            at: SimTime::from_secs(30),
            name: "c".into(),
            procs: 2,
        });
        let report = compare(&rec, &other);
        let d = report.divergence.unwrap();
        assert_eq!(d.kind, DivergenceKind::Arrival);
        assert_eq!(d.index, 2);
        assert!(
            d.expected.contains("record ended after 2"),
            "{}",
            d.render()
        );
        assert!(d.actual.contains("c+2p"), "{}", d.render());
    }
}
