//! Extension experiment: continuous operation with the job broker.
//!
//! The paper evaluates one job at a time; a deployed resource broker faces
//! a *stream* of jobs sharing the cluster. This experiment submits a
//! Poisson-ish arrival stream of miniMD jobs of mixed sizes and compares
//! two brokers over identical streams and identical cluster futures:
//!
//! * **broker/NLA** — the paper's allocator with reservation accounting,
//! * **broker/random** — the same reservation machinery but random node
//!   choice (what "users pick nodes themselves" degrades to under load).
//!
//! Also demonstrates the §6 multi-cluster campus: the same stream on a
//! two-cluster campus, where the allocator must avoid spanning clusters.
//!
//! Output: `results/multi_job_broker.csv`.

use nlrm_apps::MiniMd;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_cluster::iitk::{campus, iitk_cluster};
use nlrm_cluster::ClusterSim;
use nlrm_core::broker::{Broker, BrokerConfig, BrokerEvent, JobId, Lease};
use nlrm_core::loads::Loads;
use nlrm_core::AllocationRequest;
use nlrm_monitor::MonitorRuntime;
use nlrm_mpi::{execute, Communicator};
use nlrm_obs::Progress;
use nlrm_sim_core::rng::RngFactory;
use nlrm_sim_core::time::Duration;
use rand::Rng;
use std::collections::BTreeMap;

/// One arriving job.
#[derive(Debug, Clone)]
struct ArrivingJob {
    /// Arrival offset from stream start, seconds.
    arrival_s: u64,
    procs: u32,
    size: u32,
}

fn job_stream(count: usize, seed: u64) -> Vec<ArrivingJob> {
    let mut rng = RngFactory::new(seed).named("job-stream");
    let mut t = 0u64;
    (0..count)
        .map(|_| {
            t += rng.gen_range(30..240);
            ArrivingJob {
                arrival_s: t,
                procs: *[8u32, 16, 16, 32].get(rng.gen_range(0..4)).unwrap(),
                size: *[8u32, 16, 16, 24].get(rng.gen_range(0..4)).unwrap(),
            }
        })
        .collect()
}

/// Run a whole stream through a broker; returns per-job execution times.
///
/// `random_placement` replaces the broker's NLA choice with a uniformly
/// random reservation-respecting pick (the baseline broker).
fn run_stream(
    mut cluster: ClusterSim,
    jobs: &[ArrivingJob],
    random_placement: bool,
    seed: u64,
) -> Vec<f64> {
    let mut monitor = MonitorRuntime::new(&cluster);
    monitor.run_until(&mut cluster, nlrm_sim_core::time::SimTime::from_secs(600));
    let t0 = cluster.now();
    let mut broker = Broker::new(BrokerConfig {
        backfill: true,
        max_load_per_core: None,
        ..BrokerConfig::default()
    });
    let mut rng = RngFactory::new(seed).named("random-broker");
    let mut submitted: BTreeMap<JobId, &ArrivingJob> = BTreeMap::new();
    let mut times = Vec::new();
    let mut next_job = 0usize;

    // event loop in 30 s scheduling quanta; jobs execute to completion at
    // their start quantum (conservative: they hold reservations meanwhile
    // via explicit completion below)
    let mut running: Vec<(JobId, u64)> = Vec::new(); // (job, finish offset)
    let mut offset = 0u64;
    while next_job < jobs.len() || !broker.queued().is_empty() || !running.is_empty() {
        // completions due
        running.retain(|&(id, finish)| {
            if finish <= offset {
                broker.complete(id);
                false
            } else {
                true
            }
        });
        // arrivals due
        while next_job < jobs.len() && jobs[next_job].arrival_s <= offset {
            let j = &jobs[next_job];
            let req = AllocationRequest::minimd(j.procs);
            let id = broker.submit(format!("job{next_job}"), req).unwrap();
            submitted.insert(id, j);
            next_job += 1;
        }
        // schedule
        let snap = monitor.snapshot(cluster.now()).unwrap();
        let events = broker.tick(&snap);
        for ev in events {
            if let BrokerEvent::Started(lease) = ev {
                let lease: Lease = if random_placement {
                    // replace the NLA pick with a random reservation-valid one
                    let job = submitted[&lease.id];
                    broker.complete(lease.id); // roll back the NLA lease
                    let random = random_lease(&snap, &broker, job, lease.id, &mut rng);
                    // re-reserve through a synthetic path: re-submit is complex,
                    // so emulate by tracking manually — reuse broker by marking
                    // the random allocation as this job's lease
                    broker_force_lease(&mut broker, random.clone());
                    random
                } else {
                    *lease
                };
                let job = submitted[&lease.id];
                let comm = Communicator::new(lease.allocation.rank_map.clone());
                let workload = MiniMd::new(job.size).with_steps(50);
                let mut sandbox = cluster.clone();
                let timing = execute(&mut sandbox, &comm, &workload);
                times.push(timing.total_s);
                running.push((lease.id, offset + timing.total_s.ceil() as u64 + 1));
            }
        }
        offset += 30;
        let target = t0 + Duration::from_secs(offset);
        monitor.run_until(&mut cluster, target);
        if offset > 24 * 3600 {
            break; // safety valve
        }
    }
    times
}

/// A random reservation-respecting placement for `job`.
fn random_lease(
    snap: &nlrm_monitor::ClusterSnapshot,
    broker: &Broker,
    job: &ArrivingJob,
    id: JobId,
    rng: &mut impl Rng,
) -> Lease {
    let req = AllocationRequest::minimd(job.procs);
    let loads = Loads::derive(snap, &req.compute_weights, &req.network_weights, req.ppn).unwrap();
    let mut free: Vec<(nlrm_topology::NodeId, u32)> = loads
        .usable
        .iter()
        .map(|&n| (n, loads.pc_of(n).saturating_sub(broker.reserved_on(n))))
        .filter(|&(_, f)| f > 0)
        .collect();
    // shuffle
    for i in (1..free.len()).rev() {
        free.swap(i, rng.gen_range(0..=i));
    }
    let mut nodes = Vec::new();
    let mut remaining = job.procs;
    for (n, f) in free {
        if remaining == 0 {
            break;
        }
        let take = f.min(remaining);
        nodes.push((n, take));
        remaining -= take;
    }
    assert_eq!(remaining, 0, "stream sized to always fit");
    Lease {
        id,
        name: "random".into(),
        trace: id.trace(),
        root_span: None,
        allocation: nlrm_core::Allocation {
            policy: "broker/random".into(),
            rank_map: nlrm_core::Allocation::block_rank_map(&nodes),
            nodes,
            diagnostics: Default::default(),
        },
    }
}

/// Install a lease into the broker's books (used by the random baseline).
fn broker_force_lease(broker: &mut Broker, lease: Lease) {
    broker
        .adopt_lease(lease)
        .expect("forced lease id is free: its NLA twin was just completed");
}

fn main() {
    let progress = Progress::start("multi_job_broker");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2028);
    let n_jobs = if quick { 8 } else { 30 };
    progress.block(format!(
        "== Broker under a job stream ({n_jobs} jobs, seed {seed}) ==\n"
    ));
    let jobs = job_stream(n_jobs, seed);

    let mut table = Table::new(&["setting", "mean job time (s)", "p95 (s)", "total core-time"]);
    let mut csv = String::from("setting,job,time_s\n");
    let settings: Vec<(&str, ClusterSim, bool)> = vec![
        ("iitk + broker/NLA", iitk_cluster(seed), false),
        ("iitk + broker/random", iitk_cluster(seed), true),
        ("campus(2x30) + broker/NLA", campus(2, 30, seed), false),
        ("campus(2x30) + broker/random", campus(2, 30, seed), true),
    ];
    for (name, cluster, random) in settings {
        let times = run_stream(cluster, &jobs, random, seed);
        for (i, t) in times.iter().enumerate() {
            csv.push_str(&format!("{name},{i},{t:.4}\n"));
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let p95 = nlrm_sim_core::stats::percentile(&times, 95.0);
        let total: f64 = times.iter().sum();
        table.row(&[
            name.to_string(),
            fmt_secs(mean),
            fmt_secs(p95),
            fmt_secs(total),
        ]);
    }
    progress.block(table.to_markdown());
    write_result("multi_job_broker.csv", &csv).expect("write result");
}
