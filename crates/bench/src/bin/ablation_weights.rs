//! Ablation: SAW attribute-weight sensitivity (Eq. 1) and the
//! latency/bandwidth split (Eq. 2).
//!
//! The paper fixes the compute weights at (0.3, 0.2, 0.2, 0.1, 0.1, 0.05,
//! 0.05) and `w_lt/w_bw` at 0.25/0.75 without a sensitivity study. This
//! ablation runs miniMD under alternative weightings — the paper's default,
//! the compute-intensive and network-intensive presets, uniform weights,
//! and three `w_lt/w_bw` splits — quantifying how much the exact numbers
//! matter versus merely *having* both signals.
//!
//! Output: `results/ablation_weights.csv`.

use nlrm_apps::MiniMd;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::{AllocationRequest, ComputeWeights, NetworkLoadAwarePolicy, NetworkWeights};
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;

fn uniform_weights() -> ComputeWeights {
    ComputeWeights {
        cpu_load: 0.125,
        cpu_util: 0.125,
        flow_rate: 0.125,
        memory: 0.125,
        core_count: 0.125,
        cpu_freq: 0.125,
        total_mem: 0.125,
        users: 0.125,
    }
}

fn main() {
    let progress = Progress::start("ablation_weights");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2024);
    let reps = if quick { 2 } else { 5 };
    let steps = if quick { 30 } else { 100 };

    progress.block(format!(
        "== Ablation: attribute weights (reps {reps}, seed {seed}) ==\n"
    ));
    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600));
    let workload = MiniMd::new(16).with_steps(steps);

    let variants: Vec<(&str, ComputeWeights, NetworkWeights)> = vec![
        (
            "paper default",
            ComputeWeights::paper_default(),
            NetworkWeights::paper_default(),
        ),
        (
            "compute-intensive preset",
            ComputeWeights::compute_intensive(),
            NetworkWeights::paper_default(),
        ),
        (
            "network-intensive preset",
            ComputeWeights::network_intensive(),
            NetworkWeights::paper_default(),
        ),
        (
            "uniform compute weights",
            uniform_weights(),
            NetworkWeights::paper_default(),
        ),
        (
            "latency-heavy (w_lt=0.75)",
            ComputeWeights::paper_default(),
            NetworkWeights {
                latency: 0.75,
                bandwidth: 0.25,
            },
        ),
        (
            "bandwidth-only (w_bw=1.0)",
            ComputeWeights::paper_default(),
            NetworkWeights {
                latency: 0.0,
                bandwidth: 1.0,
            },
        ),
        (
            "latency-only (w_lt=1.0)",
            ComputeWeights::paper_default(),
            NetworkWeights {
                latency: 1.0,
                bandwidth: 0.0,
            },
        ),
    ];

    let mut table = Table::new(&["variant", "mean time (s)", "vs paper default"]);
    let mut csv = String::from("variant,rep,time_s\n");
    let mut means = Vec::new();
    for (name, cw, nw) in &variants {
        let mut req = AllocationRequest::minimd(32);
        req.compute_weights = *cw;
        req.network_weights = *nw;
        let mut sum = 0.0;
        for rep in 0..reps {
            env.advance(Duration::from_secs(300));
            let snap = env.snapshot();
            let r = env
                .run_policy(&mut NetworkLoadAwarePolicy::new(), &snap, &req, &workload)
                .expect("allocation failed");
            sum += r.timing.total_s;
            csv.push_str(&format!("{name},{rep},{:.4}\n", r.timing.total_s));
        }
        means.push(sum / reps as f64);
    }
    for (i, (name, _, _)) in variants.iter().enumerate() {
        table.row(&[
            name.to_string(),
            fmt_secs(means[i]),
            format!("{:+.1}%", (means[i] / means[0] - 1.0) * 100.0),
        ]);
    }
    progress.block(table.to_markdown());
    write_result("ablation_weights.csv", &csv).expect("write result");
}
