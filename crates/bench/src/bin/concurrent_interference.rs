//! Extension experiment: concurrent-job interference.
//!
//! Two users submit identical miniMD jobs at the same time. Three worlds:
//!
//! * **sequential** — jobs run one after another (the paper's protocol),
//! * **concurrent, reservation-aware** — the broker places them on
//!   *disjoint* good nodes (its reservation accounting at work),
//! * **concurrent, naive** — both users independently pick the same "best"
//!   nodes (what happens without a broker: everyone's monitoring points to
//!   the same quiet corner of the cluster).
//!
//! Output: `results/concurrent_interference.csv`.

use nlrm_apps::MiniMd;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::broker::{Broker, BrokerConfig, BrokerEvent};
use nlrm_core::{AllocationRequest, NetworkLoadAwarePolicy, Policy};
use nlrm_mpi::multi::{execute_concurrent, ConcurrentJob};
use nlrm_mpi::{execute, Communicator};
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;

fn main() {
    let progress = Progress::start("concurrent_interference");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2029);
    let reps = if quick { 2 } else { 5 };
    let steps = if quick { 30 } else { 100 };

    progress.block(format!(
        "== Concurrent-job interference (reps {reps}, seed {seed}) ==\n"
    ));
    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600));
    let workload = MiniMd::new(16).with_steps(steps);
    let req = AllocationRequest::minimd(32);

    let mut sums = [0.0f64; 3]; // sequential, broker, naive
    let mut csv = String::from("setting,rep,job,time_s\n");
    for rep in 0..reps {
        env.advance(Duration::from_secs(300));
        let snap = env.snapshot();

        // --- sequential baseline: two NLA runs one after another ---
        let alloc = NetworkLoadAwarePolicy::new().allocate(&snap, &req).unwrap();
        let comm = Communicator::new(alloc.rank_map.clone());
        let mut c = env.cluster.clone();
        let t1 = execute(&mut c, &comm, &workload);
        let t2 = execute(&mut c, &comm, &workload);
        sums[0] += t1.total_s + t2.total_s;
        csv.push_str(&format!("sequential,{rep},0,{:.4}\n", t1.total_s));
        csv.push_str(&format!("sequential,{rep},1,{:.4}\n", t2.total_s));

        // --- broker: reservation-aware disjoint placement ---
        let mut broker = Broker::new(BrokerConfig {
            backfill: true,
            max_load_per_core: None,
            ..BrokerConfig::default()
        });
        broker.submit("a", req.clone()).unwrap();
        broker.submit("b", req.clone()).unwrap();
        let leases: Vec<_> = broker
            .tick(&snap)
            .into_iter()
            .filter_map(|e| match e {
                BrokerEvent::Started(l) => Some(l),
                BrokerEvent::Deferred { .. } => None,
            })
            .collect();
        assert_eq!(leases.len(), 2, "60-node cluster fits two 8-node jobs");
        let jobs: Vec<ConcurrentJob> = leases
            .iter()
            .map(|l| ConcurrentJob {
                comm: Communicator::new(l.allocation.rank_map.clone()),
                workload: &workload,
                start_offset_s: 0.0,
            })
            .collect();
        let timings = execute_concurrent(&mut env.cluster.clone(), &jobs);
        for (j, t) in timings.iter().enumerate() {
            sums[1] += t.total_s;
            csv.push_str(&format!("broker,{rep},{j},{:.4}\n", t.total_s));
        }

        // --- naive: both users pick the same "best" nodes ---
        let jobs: Vec<ConcurrentJob> = (0..2)
            .map(|_| ConcurrentJob {
                comm: Communicator::new(alloc.rank_map.clone()),
                workload: &workload,
                start_offset_s: 0.0,
            })
            .collect();
        let timings = execute_concurrent(&mut env.cluster.clone(), &jobs);
        for (j, t) in timings.iter().enumerate() {
            sums[2] += t.total_s;
            csv.push_str(&format!("naive,{rep},{j},{:.4}\n", t.total_s));
        }
    }

    let denom = (reps * 2) as f64;
    let mut table = Table::new(&["setting", "mean job time (s)", "vs sequential"]);
    for (i, name) in [
        "sequential (one at a time)",
        "concurrent, broker-disjoint",
        "concurrent, naive overlap",
    ]
    .iter()
    .enumerate()
    {
        table.row(&[
            name.to_string(),
            fmt_secs(sums[i] / denom),
            format!("{:+.0}%", (sums[i] / sums[0] - 1.0) * 100.0),
        ]);
    }
    progress.block(table.to_markdown());
    progress.block("(broker-disjoint should sit near sequential; naive overlap pays for\n sharing cores and links between both jobs)");
    write_result("concurrent_interference.csv", &csv).expect("write result");
}
