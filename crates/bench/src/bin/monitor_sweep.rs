//! Monitoring traffic and fidelity: central vs sharded at scale.
//!
//! Prices one full monitoring cycle under both topologies from 1k to
//! 100k nodes (48-node switches):
//!
//! - **central** — the analytic [`central_cycle_cost`] wire cost of the
//!   all-pairs latency + bandwidth tournaments plus the published rows,
//!   and the `V−1` tournament rounds it takes to cover every pair;
//! - **sharded** — per-shard all-pairs sweeps (intra-shard only), the
//!   landmark estimator's `O(V log V)` sampled inter-shard probes (real
//!   [`NlEstimator`] run, counted by its own byte accounting), the
//!   gossiped shard summaries (real [`GossipNet`] run to convergence),
//!   and the published estimate record.
//!
//! It then measures the allocation-quality epsilon on the equivalence
//! scenarios: the sharded estimate's winner, costed under the exact
//! dense loads, vs the exact matrix's winner at the same tiered
//! granularity. Gates (self-asserting, mirrored in `ci.sh`): traffic
//! ratio ≥ 10× at the largest size, worst epsilon ≤ 5%.
//!
//! Output: `BENCH_monitor.json` at the repository root (full runs) or
//! under `results/` (`NLRM_QUICK=1` CI smoke).

use nlrm_bench::report::{self, Table};
use nlrm_core::select::group_cost;
use nlrm_core::{allocate_pruned, Loads, NlRep, StalenessPolicy};
use nlrm_core::{ComputeWeights, NetworkWeights};
use nlrm_monitor::daemons::{central_cycle_cost, DaemonConfig};
use nlrm_monitor::sample::LatencyStat;
use nlrm_monitor::{
    GossipNet, MonitorRuntime, MonitorTopo, NlEstimator, PairProbe, ShardConfig, ShardSummary,
};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::fmt::Write as _;
use std::path::Path;

const PER_SWITCH: u64 = 48;
const PROBE_PAIR_BYTES: u64 =
    nlrm_monitor::daemons::LATENCY_PROBE_BYTES + nlrm_monitor::daemons::BANDWIDTH_PROBE_BYTES;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

struct SizeRow {
    nodes: u64,
    switches: u64,
    central_bytes: u64,
    central_rounds: u64,
    sharded_bytes: u64,
    sharded_intra_bytes: u64,
    sharded_est_bytes: u64,
    sharded_gossip_bytes: u64,
    sharded_rounds: u64,
    ratio: f64,
}

/// Price one monitoring cycle at `v` nodes under both topologies.
fn sweep_size(v: u64) -> SizeRow {
    let s = v.div_ceil(PER_SWITCH);
    let central = central_cycle_cost(v as usize);
    // a v-node round-robin tournament covers all pairs in v−1 rounds
    // (v rounds when v is odd)
    let central_rounds = if v % 2 == 0 { v - 1 } else { v };

    // intra-shard sweeps: every shard probes its own pairs, in parallel
    let full = v / PER_SWITCH;
    let rem = v % PER_SWITCH;
    let intra_pairs = full * (PER_SWITCH * (PER_SWITCH - 1) / 2) + rem * rem.saturating_sub(1) / 2;
    let intra_bytes = intra_pairs * PROBE_PAIR_BYTES;

    // inter-shard estimate: run the real estimator over synthetic shards
    // (3 members each, so the rep-pair sampling path is exercised) and
    // let its own accounting price the probes
    let members: Vec<Vec<NodeId>> = (0..s)
        .map(|sw| {
            (0..3u64)
                .filter(|m| sw * PER_SWITCH + m < v)
                .map(|m| NodeId((sw * PER_SWITCH + m) as u32))
                .collect()
        })
        .collect();
    let mut probe = |u: NodeId, a: NodeId| {
        let h = splitmix64(0xE57 ^ ((u.0 as u64) << 32 | a.0 as u64));
        PairProbe {
            latency_s: 1e-4 + (h % 1000) as f64 * 1e-6,
            avail_bps: 1e8 + (h % 997) as f64 * 1e5,
            peak_bps: 1e9,
        }
    };
    let est = NlEstimator::new(s as usize).estimate(&members, &mut probe);
    let est_bytes = est.probe_bytes + est.to_record(1, SimTime::from_micros(0)).len() as u64;

    // gossip: every shard publishes its fresh summary, the overlay runs
    // anti-entropy to convergence; bytes include digests + records +
    // message overheads
    let mut net: GossipNet<u64> =
        GossipNet::new(s as usize, 2, 0x5ea1 ^ v, ShardSummary::WIRE_BYTES);
    for p in 0..s as u32 {
        net.publish(p, 1, p as u64);
    }
    let conv = net.run_to_convergence(256);
    assert!(conv.converged, "gossip failed to converge at {s} shards");

    // per-shard sweeps run concurrently, so cycle "rounds" = the longest
    // shard tournament plus the gossip rounds to disseminate summaries
    let shard_rounds = if PER_SWITCH % 2 == 0 {
        PER_SWITCH - 1
    } else {
        PER_SWITCH
    };
    let sharded_bytes = intra_bytes + est_bytes + conv.bytes;
    SizeRow {
        nodes: v,
        switches: s,
        central_bytes: central.total_bytes(),
        central_rounds,
        sharded_bytes,
        sharded_intra_bytes: intra_bytes,
        sharded_est_bytes: est_bytes,
        sharded_gossip_bytes: conv.bytes,
        sharded_rounds: shard_rounds + conv.rounds,
        ratio: central.total_bytes() as f64 / sharded_bytes as f64,
    }
}

/// The equivalence-scenario profile (see `crates/core/tests/estimated.rs`):
/// zero probe noise (central would suffer it identically) and tame link
/// heterogeneity, so the residual epsilon is the estimator's own error.
fn equivalence_profile() -> nlrm_cluster::ClusterProfile {
    let mut profile = nlrm_cluster::ClusterProfile::shared_lab();
    profile.measurement_noise = 0.0;
    profile.link_util_sigma = 0.05;
    profile.heavy_flow_rate = 0.0;
    profile
}

/// Overwrite every usable pair of the snapshot with noise-free ground
/// truth, yielding the exact-matrix oracle the estimate is judged against.
fn oracle_snapshot(
    snap: &nlrm_monitor::ClusterSnapshot,
    cluster: &nlrm_cluster::ClusterSim,
) -> nlrm_monitor::ClusterSnapshot {
    let mut exact = snap.clone();
    let usable = snap.usable_nodes();
    for (i, &u) in usable.iter().enumerate() {
        for &v in &usable[i + 1..] {
            exact
                .latency
                .set(u, v, LatencyStat::constant(cluster.latency_s(u, v)));
            exact
                .bandwidth_bps
                .set(u, v, cluster.available_bandwidth_bps(u, v));
            exact
                .peak_bandwidth_bps
                .set(u, v, cluster.peak_bandwidth_bps(u, v));
        }
    }
    exact
}

struct EpsRow {
    scenario: &'static str,
    nodes: usize,
    switches: usize,
    worst_eps: f64,
}

/// Worst allocation-cost epsilon of the sharded estimate vs the exact
/// matrix at tiered granularity, both winners costed under exact dense.
fn epsilon_for(name: &'static str, mut cluster: nlrm_cluster::ClusterSim) -> EpsRow {
    let policy = StalenessPolicy::off();
    let cw = ComputeWeights::paper_default();
    let nw = NetworkWeights::paper_default();
    let idx = cluster.topology().switch_index();
    let mut rt = MonitorRuntime::with_topo(
        &cluster,
        DaemonConfig::default(),
        MonitorTopo::Sharded(ShardConfig::new(idx.clone())),
    );
    let snap = rt
        .warm_snapshot(&mut cluster, Duration::from_secs(360))
        .expect("snapshot");
    let inter = rt.inter_estimate().expect("estimate published");
    let est =
        Loads::derive_sharded(&snap, &inter, &idx, &cw, &nw, Some(4), &policy).expect("derive");
    assert!(matches!(est.nl, NlRep::Estimated(_)));
    let exact_snap = oracle_snapshot(&snap, &cluster);
    let exact_dense =
        Loads::derive_with_policy(&exact_snap, &cw, &nw, Some(4), &policy).expect("derive exact");
    let exact_tiered = exact_dense.clone().into_tiered(&idx);

    let mut worst = 0.0f64;
    for n in [8u32, 16, 32, 48] {
        for &(alpha, beta) in &[(0.3, 0.7), (0.5, 0.5), (0.7, 0.3)] {
            let ex = allocate_pruned(&exact_tiered, n, alpha, beta).expect("exact");
            let es = allocate_pruned(&est, n, alpha, beta).expect("est");
            let exact_cost = group_cost(&exact_dense, &ex.winner.nodes, alpha, beta);
            let est_cost = group_cost(&exact_dense, &es.winner.nodes, alpha, beta);
            worst = worst.max((est_cost - exact_cost) / exact_cost.max(1e-12));
        }
    }
    EpsRow {
        scenario: name,
        nodes: cluster.num_nodes(),
        switches: idx.num_switches(),
        worst_eps: worst,
    }
}

fn main() {
    let quiet = nlrm_obs::progress::quiet();
    let quick = std::env::var("NLRM_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let sizes: &[u64] = if quick {
        &[960, 4_800]
    } else {
        &[1_000, 10_000, 100_000]
    };

    let mut rows = Vec::new();
    for &v in sizes {
        if !quiet {
            println!("monitor_sweep: pricing {v} nodes…");
        }
        rows.push(sweep_size(v));
    }

    let profile = equivalence_profile();
    let scenarios: Vec<(&'static str, nlrm_cluster::ClusterSim)> = vec![
        (
            "iitk",
            nlrm_cluster::iitk::iitk_cluster_with_profile(profile, 42),
        ),
        (
            "campus12x8",
            nlrm_cluster::iitk::campus_with_profile(12, 8, profile, 42),
        ),
        (
            "campus20x10",
            nlrm_cluster::iitk::campus_with_profile(20, 10, profile, 7),
        ),
    ];
    let mut eps_rows = Vec::new();
    for (name, cluster) in scenarios {
        if !quiet {
            println!("monitor_sweep: epsilon on {name}…");
        }
        eps_rows.push(epsilon_for(name, cluster));
    }

    let mut table = Table::new(&[
        "nodes",
        "switches",
        "central_MB",
        "sharded_MB",
        "ratio",
        "central_rounds",
        "sharded_rounds",
    ]);
    for r in &rows {
        table.row(&[
            r.nodes.to_string(),
            r.switches.to_string(),
            format!("{:.1}", r.central_bytes as f64 / 1e6),
            format!("{:.1}", r.sharded_bytes as f64 / 1e6),
            format!("{:.1}", r.ratio),
            r.central_rounds.to_string(),
            r.sharded_rounds.to_string(),
        ]);
    }
    let mut eps_table = Table::new(&["scenario", "nodes", "switches", "worst_eps"]);
    for r in &eps_rows {
        eps_table.row(&[
            r.scenario.to_string(),
            r.nodes.to_string(),
            r.switches.to_string(),
            format!("{:.4}", r.worst_eps),
        ]);
    }
    report::write_result(
        "monitor_sweep.md",
        &(table.to_markdown() + &eps_table.to_markdown()),
    )
    .expect("write md");
    report::write_result("monitor_sweep.csv", &table.to_csv()).expect("write csv");

    let max_ratio_row = rows.last().expect("at least one size");
    let worst_eps = eps_rows.iter().map(|r| r.worst_eps).fold(0.0, f64::max);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"monitor_sweep\",");
    let _ = writeln!(json, "  \"per_switch\": {PER_SWITCH},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sizes\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"switches\": {}, \"central_bytes\": {}, \
             \"central_rounds\": {}, \"sharded_bytes\": {}, \
             \"sharded_intra_bytes\": {}, \"sharded_estimate_bytes\": {}, \
             \"sharded_gossip_bytes\": {}, \"sharded_rounds\": {}, \
             \"traffic_ratio\": {:.1}}}{comma}",
            r.nodes,
            r.switches,
            r.central_bytes,
            r.central_rounds,
            r.sharded_bytes,
            r.sharded_intra_bytes,
            r.sharded_est_bytes,
            r.sharded_gossip_bytes,
            r.sharded_rounds,
            r.ratio
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"epsilon\": [");
    for (i, r) in eps_rows.iter().enumerate() {
        let comma = if i + 1 < eps_rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"nodes\": {}, \"switches\": {}, \
             \"worst_eps\": {:.4}}}{comma}",
            r.scenario, r.nodes, r.switches, r.worst_eps
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"traffic_ratio_at_max\": {:.1},",
        max_ratio_row.ratio
    );
    let _ = writeln!(json, "  \"worst_eps\": {worst_eps:.4},");
    let _ = writeln!(
        json,
        "  \"gates\": {{\"ratio_ge_10\": {}, \"eps_le_0_05\": {}}}",
        max_ratio_row.ratio >= 10.0,
        worst_eps <= 0.05
    );
    let _ = writeln!(json, "}}");

    let out = if quick {
        report::results_dir().join("BENCH_monitor.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .join("BENCH_monitor.json")
    };
    std::fs::write(&out, &json).expect("write BENCH_monitor.json");
    if !quiet {
        println!("wrote {}", out.display());
        print!("{}", table.to_markdown());
        print!("{}", eps_table.to_markdown());
        println!(
            "traffic ratio at {} nodes: {:.1}x, worst eps {:.4}",
            max_ratio_row.nodes, max_ratio_row.ratio, worst_eps
        );
    }
    assert!(
        max_ratio_row.ratio >= 10.0,
        "sharded monitoring must cut traffic ≥10x at {} nodes, got {:.1}x",
        max_ratio_row.nodes,
        max_ratio_row.ratio
    );
    assert!(
        worst_eps <= 0.05,
        "sharded estimate allocation epsilon exceeded 5%: {worst_eps:.4}"
    );
}
