//! Allocator throughput vs cluster size: the mega-cluster scaling sweep.
//!
//! Builds synthetic tiered clusters from 1k to 100k nodes (48-node
//! switches, deterministic pseudo-random loads), runs a stream of
//! allocation decisions through the fused bound-pruned allocator
//! ([`allocate_pruned`]), and reports allocations/sec plus p50/p99
//! decision latency per size.
//!
//! Output: `BENCH_scale.json` at the repository root (the repo's perf
//! trajectory), plus a Markdown/CSV table under `results/`.
//!
//! `NLRM_QUICK=1` shrinks the sweep for CI smoke runs; `NLRM_QUIET=1`
//! suppresses progress chatter.

use nlrm_bench::report::{self, Table};
use nlrm_core::{allocate_pruned, Loads, TieredNl};
use nlrm_topology::NodeId;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

const PER_SWITCH: u32 = 48;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in [0, 1).
fn frac(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A synthetic tiered cluster: `v` nodes in 48-node switches, varied
/// compute loads, exact intra-switch and aggregated inter-switch network
/// loads, 4 spare process slots per node.
fn synthetic_loads(v: u32, seed: u64) -> Loads {
    let nodes: Vec<NodeId> = (0..v).map(NodeId).collect();
    let switch_of: Vec<u32> = (0..v).map(|n| n / PER_SWITCH).collect();
    let switches = v.div_ceil(PER_SWITCH) as usize;
    let nl = TieredNl::from_fns(
        &nodes,
        &switch_of,
        switches,
        |a, b| {
            let h = splitmix64(seed ^ (a.index() as u64 * 1_000_003 + b.index() as u64));
            0.05 + 0.3 * frac(h)
        },
        |s, t| {
            let h = splitmix64(seed ^ (((s as u64) << 32) | t as u64));
            0.2 + 0.6 * frac(h)
        },
    );
    let cl: Vec<f64> = (0..v)
        .map(|n| 0.1 + 0.8 * frac(splitmix64(seed ^ (n as u64 + 17))))
        .collect();
    let pc = vec![4u32; v as usize];
    Loads::from_parts(nodes, cl, nl, pc)
}

struct SizeResult {
    nodes: u32,
    jobs: usize,
    build_secs: f64,
    allocs_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_expanded: f64,
    mean_pruned: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn sweep_size(v: u32, jobs: usize, seed: u64) -> SizeResult {
    let build_start = Instant::now();
    let loads = synthetic_loads(v, seed);
    let build_secs = build_start.elapsed().as_secs_f64();

    // the paper's job mixes: process counts and α/β cycles
    let procs = [32u32, 64, 128, 256];
    let mixes = [(0.3, 0.7), (0.4, 0.6), (0.7, 0.3)];
    let mut latencies = Vec::with_capacity(jobs);
    let mut expanded = 0u64;
    let mut pruned = 0u64;
    for j in 0..jobs {
        let n = procs[j % procs.len()];
        let (alpha, beta) = mixes[j % mixes.len()];
        let t0 = Instant::now();
        let sel = allocate_pruned(&loads, n, alpha, beta).expect("satisfiable");
        latencies.push(t0.elapsed().as_secs_f64());
        expanded += sel.expanded as u64;
        pruned += sel.pruned as u64;
    }
    latencies.sort_by(f64::total_cmp);
    let total: f64 = latencies.iter().sum();
    SizeResult {
        nodes: v,
        jobs,
        build_secs,
        allocs_per_sec: jobs as f64 / total,
        p50_ms: percentile(&latencies, 0.50) * 1e3,
        p99_ms: percentile(&latencies, 0.99) * 1e3,
        mean_expanded: expanded as f64 / jobs as f64,
        mean_pruned: pruned as f64 / jobs as f64,
    }
}

fn main() {
    let quick = std::env::var("NLRM_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let sizes: &[(u32, usize)] = if quick {
        &[(1_000, 8), (5_000, 5)]
    } else {
        &[(1_000, 40), (10_000, 20), (50_000, 10), (100_000, 10)]
    };

    let mut results = Vec::new();
    for &(v, jobs) in sizes {
        if !nlrm_obs::progress::quiet() {
            println!("scale_sweep: {v} nodes, {jobs} decisions…");
        }
        results.push(sweep_size(v, jobs, 0xC0FFEE ^ v as u64));
    }

    // linear-scaling factor between the endpoints: with allocs/sec ∝ 1/V
    // (perfectly linear decision cost), the throughput ratio equals the
    // node ratio; `factor` is how far past linear the large end fell
    let first = &results[0];
    let last = &results[results.len() - 1];
    let node_ratio = last.nodes as f64 / first.nodes as f64;
    let tput_ratio = first.allocs_per_sec / last.allocs_per_sec;
    let linear_factor = tput_ratio / node_ratio;

    let mut table = Table::new(&[
        "nodes",
        "jobs",
        "build_s",
        "allocs/sec",
        "p50_ms",
        "p99_ms",
        "expanded",
        "pruned",
    ]);
    for r in &results {
        table.row(&[
            r.nodes.to_string(),
            r.jobs.to_string(),
            format!("{:.3}", r.build_secs),
            format!("{:.1}", r.allocs_per_sec),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
            format!("{:.1}", r.mean_expanded),
            format!("{:.1}", r.mean_pruned),
        ]);
    }
    report::write_result("scale_sweep.md", &table.to_markdown()).expect("write md");
    report::write_result("scale_sweep.csv", &table.to_csv()).expect("write csv");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"scale_sweep\",");
    let _ = writeln!(json, "  \"per_switch\": {PER_SWITCH},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"sizes\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"nodes\": {}, \"jobs\": {}, \"build_secs\": {:.6}, \
             \"allocs_per_sec\": {:.3}, \"p50_ms\": {:.4}, \"p99_ms\": {:.4}, \
             \"mean_expanded\": {:.1}, \"mean_pruned\": {:.1}}}{comma}",
            r.nodes,
            r.jobs,
            r.build_secs,
            r.allocs_per_sec,
            r.p50_ms,
            r.p99_ms,
            r.mean_expanded,
            r.mean_pruned
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"linear_factor\": {linear_factor:.3},");
    let _ = writeln!(json, "  \"within_2x_of_linear\": {}", linear_factor <= 2.0);
    let _ = writeln!(json, "}}");

    // BENCH_*.json at the repository root are the committed perf
    // trajectory — only full runs belong there; quick (CI smoke) runs
    // land next to the other generated results instead
    let out = if quick {
        report::results_dir().join("BENCH_scale.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .join("BENCH_scale.json")
    };
    std::fs::write(&out, &json).expect("write BENCH_scale.json");
    if !nlrm_obs::progress::quiet() {
        println!("wrote {}", out.display());
        print!("{}", table.to_markdown());
        println!("linear_factor (1.0 = perfectly linear): {linear_factor:.3}");
    }
    assert!(
        linear_factor <= 2.0,
        "allocator fell more than 2x past linear scaling: {linear_factor:.3}"
    );
}
