//! Reproduces **Figure 6 and Table 3** of the paper: miniFE strong scaling
//! under the four allocation policies.
//!
//! Grid: processes ∈ {8, 16, 32, 48} (4 per node), problem dimension
//! nx ∈ {48, 96, 144, 256, 384} with ny = nz = nx, all four policies on the
//! same snapshot, 5 repetitions (paper §5.2; miniFE request uses α = 0.4,
//! β = 0.6).
//!
//! Outputs: `results/fig6_minife.csv`, `results/table3_minife_gains.md`.
//!
//! Env: `NLRM_QUICK=1` shrinks the grid; `NLRM_SEED=<n>` reseeds.

use nlrm_apps::MiniFe;
use nlrm_bench::gains::{GainTable, PolicyTimes};
use nlrm_bench::plot::LinePlot;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::{paper_policies, Experiment};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::AllocationRequest;
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;
use std::collections::BTreeMap;

fn main() {
    let progress = Progress::start("fig6_minife");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2021);
    let (procs_grid, sizes, reps, iters) = if quick {
        (vec![8u32, 32], vec![48u32, 144], 2usize, 30usize)
    } else {
        (
            vec![8u32, 16, 32, 48],
            vec![48u32, 96, 144, 256, 384],
            5usize,
            200usize,
        )
    };

    progress.block("== Fig. 6 / Table 3: miniFE strong scaling ==");
    progress.block(format!(
        "grid: procs={procs_grid:?} nx={sizes:?} reps={reps} iters={iters} seed={seed}\n"
    ));

    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600));

    let mut csv = String::from("procs,nx,policy,rep,time_s,load_per_core,comm_fraction\n");
    let mut times = PolicyTimes::new();
    // per-configuration CoV over the repetitions (the paper's stability
    // metric), averaged over all cells at the end
    let mut cell_covs: BTreeMap<String, Vec<f64>> = BTreeMap::new();

    for &procs in &procs_grid {
        let mut fig = Table::new(&[
            "nx",
            "random",
            "sequential",
            "load-aware",
            "network-load-aware",
        ]);
        let mut cell: BTreeMap<(u32, String), Vec<f64>> = BTreeMap::new();
        for &nx in &sizes {
            let req = AllocationRequest::minife(procs);
            let workload = MiniFe::new(nx).with_iterations(iters);
            for rep in 0..reps {
                env.advance(Duration::from_secs(300));
                let mut policies = paper_policies(seed ^ ((rep as u64) << 8) ^ nx as u64);
                let results = env
                    .compare(&mut policies, &req, &workload)
                    .expect("allocation failed");
                for r in &results {
                    times.push(&r.policy, r.timing.total_s);
                    cell.entry((nx, r.policy.clone()))
                        .or_default()
                        .push(r.timing.total_s);
                    csv.push_str(&format!(
                        "{procs},{nx},{},{rep},{:.4},{:.4},{:.4}\n",
                        r.policy,
                        r.timing.total_s,
                        r.timing.mean_load_per_core,
                        r.timing.comm_fraction()
                    ));
                }
            }
        }
        for ((_sz, policy), v) in &cell {
            if let Some(sum) = nlrm_sim_core::stats::Summary::of(v) {
                cell_covs.entry(policy.clone()).or_default().push(sum.cov());
            }
        }
        for &nx in &sizes {
            let mean = |policy: &str| {
                let v = &cell[&(nx, policy.to_string())];
                v.iter().sum::<f64>() / v.len() as f64
            };
            fig.row(&[
                nx.to_string(),
                fmt_secs(mean("random")),
                fmt_secs(mean("sequential")),
                fmt_secs(mean("load-aware")),
                fmt_secs(mean("network-load-aware")),
            ]);
        }
        progress.block(format!(
            "-- execution time (s), {procs} processes (mean of {reps} reps) --"
        ));
        progress.block(fig.to_markdown());
        let mut svg = LinePlot::new(
            &format!("fig6: {procs} processes"),
            "nx",
            "execution time (s)",
        );
        for policy in ["random", "sequential", "load-aware", "network-load-aware"] {
            svg.series(
                policy,
                sizes
                    .iter()
                    .map(|&x| {
                        let v = &cell[&(x, policy.to_string())];
                        (x as f64, v.iter().sum::<f64>() / v.len() as f64)
                    })
                    .collect(),
            );
        }
        write_result(&format!("fig6_p{procs}.svg"), &svg.to_svg(560, 340)).expect("write result");
    }

    let table3 = GainTable::build(&times, "network-load-aware");
    progress.block("-- Table 3: percentage gain of network-and-load-aware --");
    progress.block(table3.to_markdown());

    let mut cov = Table::new(&["policy", "CoV of exec times"]);
    for policy in times.policies() {
        let covs = &cell_covs[&policy];
        cov.row(&[
            policy.clone(),
            format!("{:.2}", covs.iter().sum::<f64>() / covs.len() as f64),
        ]);
    }
    progress
        .block("-- run stability (paper §5.2: NLA 0.05 < load-aware 0.08 < sequential 0.11) --");
    progress.block(cov.to_markdown());

    write_result("fig6_minife.csv", &csv).expect("write result");
    write_result("table3_minife_gains.md", &table3.to_markdown()).expect("write result");
}
