//! Causal span traces over a faulted multi-job broker run.
//!
//! Runs the traced broker scenario (the shared fault storyline plus real
//! traced execution of every granted job), then exports the span store
//! three ways:
//!
//! - `results/trace_report.json` — params, per-job lifecycle summaries,
//!   and each job's critical path with per-kind time attribution;
//! - `results/trace_report.chrome.json` — Chrome trace-event JSON; load
//!   it in <https://ui.perfetto.dev> (or `chrome://tracing`) to see the
//!   whole run on node/daemon tracks;
//! - `results/trace_summary.txt` — indented per-trace text rendering;
//! - `results/trace_report.md` — the critical-path table.

use nlrm_bench::obs_scenario::{FULL_CHECKPOINTS, QUICK_CHECKPOINTS};
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::trace_scenario::{run_traced_broker_scenario, TracedJob};
use nlrm_obs::{json, Progress, SpanStore};

fn job_json(spans: &SpanStore, job: &TracedJob) -> String {
    let nodes: Vec<String> = job
        .nodes
        .iter()
        .map(|n| json::string(&n.to_string()))
        .collect();
    let path = spans
        .critical_path(job.trace)
        .expect("every executed job has a critical path");
    json::object(&[
        ("job", json::string(&job.name)),
        ("trace", json::string(&job.trace.to_string())),
        ("submitted_at_s", json::num(job.submitted_at.as_secs_f64())),
        ("granted_at_s", json::num(job.granted_at.as_secs_f64())),
        ("completed_at_s", json::num(job.completed_at.as_secs_f64())),
        ("queue_wait_s", json::num(job.queue_wait().as_secs_f64())),
        ("lifecycle_s", json::num(job.lifecycle().as_secs_f64())),
        ("exec_total_s", json::num(job.timing.total_s)),
        ("exec_compute_s", json::num(job.timing.compute_s)),
        ("exec_comm_s", json::num(job.timing.comm_s)),
        ("steps", job.timing.steps.to_string()),
        ("nodes", json::array(&nodes)),
        ("critical_path", path.to_json()),
    ])
}

fn main() {
    let progress = Progress::start("trace_report");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let checkpoints = if quick {
        QUICK_CHECKPOINTS
    } else {
        FULL_CHECKPOINTS
    };
    progress.kv("seed", seed);
    progress.kv("checkpoints", checkpoints.len());

    progress.phase("scenario");
    let r = run_traced_broker_scenario(seed, checkpoints);
    let spans = &r.obs.spans;

    progress.phase("export");
    let params = json::object(&[
        ("seed", seed.to_string()),
        ("nodes", "8".to_string()),
        ("quick", quick.to_string()),
        (
            "checkpoints_s",
            json::array(
                &checkpoints
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    let summary = json::object(&[
        ("jobs", r.jobs.len().to_string()),
        ("deferred", r.deferred.len().to_string()),
        ("spans_recorded", spans.len().to_string()),
        ("spans_open", spans.open_count().to_string()),
        ("spans_dropped", spans.dropped().to_string()),
        ("traces", spans.trace_ids().len().to_string()),
    ]);
    let jobs: Vec<String> = r.jobs.iter().map(|j| job_json(spans, j)).collect();
    let report = json::object(&[
        ("params", params),
        ("summary", summary),
        ("jobs", json::array(&jobs)),
    ]);
    let chrome = spans.to_chrome_json();
    json::validate(&report).expect("trace_report.json must be valid JSON");
    json::validate(&chrome).expect("chrome export must be valid JSON");

    let mut table = Table::new(&[
        "job",
        "trace",
        "queue_wait_s",
        "exec_s",
        "lifecycle_s",
        "path_kinds",
        "dominant_kind",
    ]);
    let mut summaries = String::new();
    for job in &r.jobs {
        let path = spans.critical_path(job.trace).expect("critical path");
        let by_kind = path.by_kind();
        let dominant = by_kind
            .first()
            .map(|(kind, d)| format!("{kind} ({})", fmt_secs(d.as_secs_f64())))
            .unwrap_or_default();
        table.row(&[
            job.name.clone(),
            job.trace.to_string(),
            fmt_secs(job.queue_wait().as_secs_f64()),
            fmt_secs(job.timing.total_s),
            fmt_secs(job.lifecycle().as_secs_f64()),
            path.kind_count().to_string(),
            dominant,
        ]);
        summaries.push_str(&spans.render_trace(job.trace));
        summaries.push('\n');
    }

    write_result("trace_report.json", &report).expect("write result");
    write_result("trace_report.chrome.json", &chrome).expect("write result");
    write_result("trace_summary.txt", &summaries).expect("write result");
    write_result("trace_report.md", &table.to_markdown()).expect("write result");

    progress.kv("jobs", r.jobs.len());
    progress.kv("spans", spans.len());
    progress.kv("deferred", r.deferred.len());
    progress.block(table.to_markdown());
    progress.done();
}
