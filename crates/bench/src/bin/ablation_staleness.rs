//! Ablation: monitoring staleness.
//!
//! The paper's daemons sample node state every 3–10 s, latency every minute
//! and bandwidth every 5 minutes (§4), so the allocator always decides on
//! slightly stale data. This ablation quantifies the cost of staleness: the
//! allocator decides on a snapshot frozen Δ ago while the cluster moved on,
//! for Δ from 0 to 2 hours. It isolates exactly what the paper's monitoring
//! frequency buys.
//!
//! Output: `results/ablation_staleness.csv`.

use nlrm_apps::MiniMd;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::{AllocationRequest, NetworkLoadAwarePolicy};
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;

fn main() {
    let progress = Progress::start("ablation_staleness");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let reps = if quick { 2 } else { 5 };
    let steps = if quick { 30 } else { 100 };
    let delays_s: Vec<u64> = vec![0, 60, 300, 900, 1800, 3600, 7200];

    progress.block(format!(
        "== Ablation: snapshot staleness (reps {reps}, seed {seed}) ==\n"
    ));
    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600));
    let workload = MiniMd::new(16).with_steps(steps);
    let req = AllocationRequest::minimd(32);

    let mut table = Table::new(&["staleness", "mean time (s)", "vs fresh"]);
    let mut csv = String::from("staleness_s,rep,time_s\n");
    let mut means = Vec::new();
    for &delay in &delays_s {
        let mut sum = 0.0;
        for rep in 0..reps {
            env.advance(Duration::from_secs(300));
            // freeze the snapshot now…
            let snap = env.snapshot();
            // …then let the cluster evolve for `delay` before the job starts
            let mut stale_env = env.clone();
            stale_env.advance(Duration::from_secs(delay));
            let r = stale_env
                .run_policy(&mut NetworkLoadAwarePolicy::new(), &snap, &req, &workload)
                .expect("allocation failed");
            sum += r.timing.total_s;
            csv.push_str(&format!("{delay},{rep},{:.4}\n", r.timing.total_s));
        }
        means.push(sum / reps as f64);
    }
    for (i, &delay) in delays_s.iter().enumerate() {
        table.row(&[
            format!("{delay} s"),
            fmt_secs(means[i]),
            format!("{:+.1}%", (means[i] / means[0] - 1.0) * 100.0),
        ]);
    }
    progress.block(table.to_markdown());
    progress.block("(expected: fresh ≈ minute-old snapshots, degradation growing past the");
    progress.block(" background processes' correlation time — stale data ≈ random placement)");
    write_result("ablation_staleness.csv", &csv).expect("write result");
}
