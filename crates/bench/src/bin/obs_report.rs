//! End-to-end observability report over a faulted broker run.
//!
//! Runs the shared faulted-broker scenario (daemon kills, a master
//! failover, a headless supervision plane, stale node-state samples)
//! with an observer installed, then exports everything the stack
//! recorded:
//!
//! - `results/obs_report.json` — params, summary counters, the full
//!   event journal, the metrics registry, and one explain-trace entry
//!   per granted allocation;
//! - `results/obs_timeline.txt` — the same journal as a human-readable
//!   virtual-time timeline;
//! - `results/obs_metrics.prom` — Prometheus-style text exposition.

use nlrm_bench::obs_scenario::{
    run_faulted_broker_scenario, Decision, FULL_CHECKPOINTS, QUICK_CHECKPOINTS,
};
use nlrm_bench::report::write_result;
use nlrm_obs::{json, Progress};

fn decision_json(d: &Decision) -> String {
    let nodes: Vec<String> = d
        .nodes
        .iter()
        .map(|n| json::string(&n.to_string()))
        .collect();
    let winner_matches = d
        .explain
        .winner()
        .is_some_and(|w| w.nodes == d.nodes)
        .to_string();
    json::object(&[
        ("job", json::string(&d.job)),
        ("trace", json::string(&d.trace.to_string())),
        ("granted_at_s", json::num(d.granted_at.as_secs_f64())),
        ("nodes", json::array(&nodes)),
        ("cost", json::num(d.cost)),
        ("winner_matches_placement", winner_matches),
        ("explain", d.explain.to_json()),
    ])
}

fn main() {
    let progress = Progress::start("obs_report");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let checkpoints = if quick {
        QUICK_CHECKPOINTS
    } else {
        FULL_CHECKPOINTS
    };
    progress.kv("seed", seed);
    progress.kv("checkpoints", checkpoints.len());

    progress.phase("scenario");
    let r = run_faulted_broker_scenario(seed, checkpoints);
    let journal = &r.obs.journal;
    let metrics = &r.obs.metrics;

    progress.phase("export");
    let params = json::object(&[
        ("seed", seed.to_string()),
        ("nodes", "8".to_string()),
        ("quick", quick.to_string()),
        (
            "checkpoints_s",
            json::array(
                &checkpoints
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    let summary = json::object(&[
        ("failovers", r.failovers.to_string()),
        ("relaunches", r.relaunches.to_string()),
        ("failover_events", journal.count_of("failover").to_string()),
        (
            "relaunch_events",
            journal.count_of("daemon_relaunched").to_string(),
        ),
        (
            "stale_node_exclusions",
            metrics
                .counter_value("loads_stale_node_excluded_total")
                .to_string(),
        ),
        (
            "stale_pairs_blended",
            metrics
                .counter_value("loads_stale_pairs_blended_total")
                .to_string(),
        ),
        ("granted", r.decisions.len().to_string()),
        ("deferred", r.deferred.len().to_string()),
        ("events_recorded", journal.total_recorded().to_string()),
        ("events_dropped", journal.dropped().to_string()),
        ("events_filtered", journal.filtered().to_string()),
    ]);
    let decisions: Vec<String> = r.decisions.iter().map(decision_json).collect();
    let report = json::object(&[
        ("params", params),
        ("summary", summary),
        ("decisions", json::array(&decisions)),
        ("events", journal.to_json_array()),
        ("metrics", metrics.to_json()),
    ]);

    write_result("obs_report.json", &report).expect("write result");
    write_result("obs_timeline.txt", &journal.render_timeline()).expect("write result");
    write_result("obs_metrics.prom", &metrics.to_prometheus()).expect("write result");

    progress.kv("failovers", r.failovers);
    progress.kv("relaunches", r.relaunches);
    progress.kv("granted", r.decisions.len());
    progress.kv("deferred", r.deferred.len());
    progress.block(journal.render_timeline());
    progress.done();
}
