//! Continuous-telemetry health report over paired broker runs.
//!
//! Runs the shared broker scenario twice with the telemetry loop
//! enabled — once under the full fault storyline (daemon kills, a master
//! failover, a headless supervision plane, stale samples, a permanently
//! starving job) and once fault-free — then reports what the health
//! tracker, SLO tracker, and anomaly detectors said about each arm.
//!
//! The point of the pairing is falsifiability: the detectors must fire
//! on the degraded run *and stay quiet on the healthy one*, otherwise
//! they are noise generators, not detectors.
//!
//! Output:
//!
//! - `results/health_report.json` — params, both arms (health snapshot,
//!   SLO attainment, anomalies, sampled series), and sampler overhead;
//! - `results/health_report.md` — the same comparison as a table;
//! - `BENCH_health.json` — sampler/telemetry overhead as a fraction of
//!   scenario runtime (repo root on full runs, results dir on quick).

use nlrm_bench::obs_scenario::{
    run_broker_scenario, ObsScenarioResult, ScenarioOptions, FULL_CHECKPOINTS, QUICK_CHECKPOINTS,
};
use nlrm_bench::report::{self, write_result, Table};
use nlrm_obs::{json, Progress};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// One scenario arm plus the wall-clock it took.
struct Arm {
    name: &'static str,
    result: ObsScenarioResult,
    wall_secs: f64,
}

fn run_arm(name: &'static str, seed: u64, checkpoints: &[u64], opts: ScenarioOptions) -> Arm {
    let t0 = Instant::now();
    let result = run_broker_scenario(seed, checkpoints, opts);
    Arm {
        name,
        result,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

fn arm_json(arm: &Arm) -> String {
    let tel = &arm.result.obs.telemetry;
    let journal = &arm.result.obs.journal;
    let anomalies: Vec<String> = tel.anomalies().iter().map(|a| a.to_json()).collect();
    json::object(&[
        ("name", json::string(arm.name)),
        ("wall_secs", json::num(arm.wall_secs)),
        ("telemetry_ticks", tel.ticks().to_string()),
        ("telemetry_wall_nanos", tel.wall_nanos().to_string()),
        ("granted", arm.result.decisions.len().to_string()),
        ("deferred", arm.result.deferred.len().to_string()),
        ("failovers", arm.result.failovers.to_string()),
        ("relaunches", arm.result.relaunches.to_string()),
        (
            "anomaly_events",
            journal.count_of("anomaly_detected").to_string(),
        ),
        (
            "slo_breach_events",
            journal.count_of("slo_breached").to_string(),
        ),
        ("anomalies", json::array(&anomalies)),
        (
            "health",
            tel.latest_health()
                .map(|h| h.to_json())
                .unwrap_or_else(|| "null".to_string()),
        ),
        ("slos", tel.slo_json()),
        ("telemetry", tel.to_json()),
    ])
}

fn count_kind(arm: &Arm, label: &str) -> usize {
    arm.result
        .obs
        .telemetry
        .anomalies()
        .iter()
        .filter(|a| a.kind.label() == label)
        .count()
}

fn main() {
    let progress = Progress::start("health_report");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let checkpoints = if quick {
        QUICK_CHECKPOINTS
    } else {
        FULL_CHECKPOINTS
    };
    progress.kv("seed", seed);
    progress.kv("checkpoints", checkpoints.len());

    progress.phase("faulted arm");
    let faulted = run_arm(
        "faulted",
        seed,
        checkpoints,
        ScenarioOptions::faulted_telemetry(),
    );
    progress.phase("clean arm");
    let clean = run_arm(
        "clean",
        seed,
        checkpoints,
        ScenarioOptions::clean_telemetry(),
    );

    progress.phase("export");
    // telemetry overhead = time spent inside Telemetry::tick (health
    // derivation + SLO evaluation + detectors + sampler) over the whole
    // scenario wall time, reported for the heavier (faulted) arm
    let overhead_frac = |arm: &Arm| {
        let tel = arm.result.obs.telemetry.wall_nanos() as f64 / 1e9;
        if arm.wall_secs > 0.0 {
            tel / arm.wall_secs
        } else {
            0.0
        }
    };
    let faulted_overhead = overhead_frac(&faulted);
    let clean_overhead = overhead_frac(&clean);

    let params = json::object(&[
        ("seed", seed.to_string()),
        ("nodes", "8".to_string()),
        ("quick", quick.to_string()),
        (
            "checkpoints_s",
            json::array(
                &checkpoints
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>(),
            ),
        ),
    ]);
    let sampler = json::object(&[
        ("faulted_overhead_frac", json::num(faulted_overhead)),
        ("clean_overhead_frac", json::num(clean_overhead)),
        ("budget_frac", json::num(0.05)),
        (
            "within_budget",
            (faulted_overhead <= 0.05 && clean_overhead <= 0.05).to_string(),
        ),
    ]);
    let report_json = json::object(&[
        ("params", params),
        ("arms", json::array(&[arm_json(&faulted), arm_json(&clean)])),
        ("sampler", sampler),
    ]);
    json::validate(&report_json).expect("health_report.json is valid JSON");
    write_result("health_report.json", &report_json).expect("write result");

    let mut table = Table::new(&[
        "arm",
        "anomalies",
        "staleness",
        "starvation",
        "slo breaches",
        "telemetry ticks",
        "overhead",
    ]);
    for arm in [&faulted, &clean] {
        table.row(&[
            arm.name.to_string(),
            arm.result.obs.telemetry.anomalies().len().to_string(),
            count_kind(arm, "staleness_surge").to_string(),
            count_kind(arm, "starvation").to_string(),
            arm.result.obs.journal.count_of("slo_breached").to_string(),
            arm.result.obs.telemetry.ticks().to_string(),
            format!("{:.4}%", overhead_frac(arm) * 100.0),
        ]);
    }
    let mut md = String::new();
    let _ = writeln!(md, "# Cluster health report\n");
    let _ = writeln!(
        md,
        "Paired runs of the broker scenario with the continuous-telemetry \
         loop enabled: the *faulted* arm takes the full fault storyline \
         (daemon kills at t=400/450, master failover at t=700, headless \
         plane at t=900, stale samples after t=950, a starving 64-proc \
         job), the *clean* arm runs the same checkpoints fault-free.\n"
    );
    md.push_str(&table.to_markdown());
    if let Some(h) = faulted.result.obs.telemetry.latest_health() {
        let _ = writeln!(md, "\n## Final health snapshot (faulted arm)\n");
        let _ = writeln!(md, "```json\n{}\n```", h.to_json());
    }
    write_result("health_report.md", &md).expect("write result");

    let bench = json::object(&[
        ("bench", json::string("health_report")),
        ("quick", quick.to_string()),
        ("seed", seed.to_string()),
        ("faulted_wall_secs", json::num(faulted.wall_secs)),
        ("clean_wall_secs", json::num(clean.wall_secs)),
        (
            "faulted_telemetry_ticks",
            faulted.result.obs.telemetry.ticks().to_string(),
        ),
        (
            "clean_telemetry_ticks",
            clean.result.obs.telemetry.ticks().to_string(),
        ),
        ("faulted_overhead_frac", json::num(faulted_overhead)),
        ("clean_overhead_frac", json::num(clean_overhead)),
        (
            "faulted_anomalies",
            faulted.result.obs.telemetry.anomalies().len().to_string(),
        ),
        (
            "clean_anomalies",
            clean.result.obs.telemetry.anomalies().len().to_string(),
        ),
        ("overhead_budget_frac", json::num(0.05)),
        (
            "within_budget",
            (faulted_overhead <= 0.05 && clean_overhead <= 0.05).to_string(),
        ),
    ]);
    json::validate(&bench).expect("BENCH_health.json is valid JSON");
    // BENCH_*.json at the repository root are the committed perf
    // trajectory — only full runs belong there; quick (CI smoke) runs
    // land next to the other generated results instead
    let out = if quick {
        report::results_dir().join("BENCH_health.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .join("BENCH_health.json")
    };
    std::fs::write(&out, &bench).expect("write BENCH_health.json");
    if !nlrm_obs::progress::quiet() {
        println!("wrote {}", out.display());
        print!("{}", table.to_markdown());
    }

    progress.kv(
        "faulted_anomalies",
        faulted.result.obs.telemetry.anomalies().len(),
    );
    progress.kv(
        "clean_anomalies",
        clean.result.obs.telemetry.anomalies().len(),
    );
    progress.kv("faulted_overhead", format!("{faulted_overhead:.5}"));
    progress.done();
}
