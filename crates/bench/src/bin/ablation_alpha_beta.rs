//! Ablation: the α/β compute-vs-network mix of Eq. 4.
//!
//! The paper sets (α, β) = (0.3, 0.7) for miniMD and (0.4, 0.6) for miniFE
//! "determined empirically" (§5). This sweep regenerates that choice: it
//! runs both applications under α ∈ {0, 0.1, …, 1.0} and reports mean
//! execution time, showing the U-shape the authors tuned against —
//! α too high ignores the network, α too low tolerates overloaded nodes.
//!
//! Output: `results/ablation_alpha_beta.csv`.

use nlrm_apps::{MiniFe, MiniMd};
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::{AllocationRequest, NetworkLoadAwarePolicy};
use nlrm_mpi::pattern::Workload;
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;

fn main() {
    let progress = Progress::start("ablation_alpha_beta");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2023);
    let reps = if quick { 2 } else { 5 };
    let alphas: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();

    progress.block(format!(
        "== Ablation: α/β mix of Eq. 4 (reps {reps}, seed {seed}) ==\n"
    ));
    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600));

    let minimd = MiniMd::new(16).with_steps(if quick { 30 } else { 100 });
    let minife = MiniFe::new(96).with_iterations(if quick { 30 } else { 100 });
    let apps: Vec<(&str, &dyn Workload, u32)> = vec![
        ("miniMD(s=16)", &minimd, 32),
        ("miniFE(nx=96)", &minife, 32),
    ];

    let mut table = Table::new(&["alpha", "miniMD(s=16) mean s", "miniFE(nx=96) mean s"]);
    let mut csv = String::from("alpha,app,rep,time_s\n");
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for &alpha in &alphas {
        let mut means = Vec::new();
        for &(name, workload, procs) in &apps {
            let req = AllocationRequest::new(procs, Some(4), alpha, 1.0 - alpha);
            let mut sum = 0.0;
            for rep in 0..reps {
                env.advance(Duration::from_secs(300));
                let snap = env.snapshot();
                let r = env
                    .run_policy(&mut NetworkLoadAwarePolicy::new(), &snap, &req, workload)
                    .expect("allocation failed");
                sum += r.timing.total_s;
                csv.push_str(&format!("{alpha},{name},{rep},{:.4}\n", r.timing.total_s));
            }
            means.push(sum / reps as f64);
        }
        table.row(&[
            format!("{alpha:.1}"),
            fmt_secs(means[0]),
            fmt_secs(means[1]),
        ]);
        rows.push(means);
    }
    progress.block(table.to_markdown());
    let best_md = alphas[argmin(rows.iter().map(|r| r[0]))];
    let best_fe = alphas[argmin(rows.iter().map(|r| r[1]))];
    progress.block(format!(
        "best α: miniMD {best_md:.1} (paper used 0.3), miniFE {best_fe:.1} (paper used 0.4)"
    ));
    write_result("ablation_alpha_beta.csv", &csv).expect("write result");
}

fn argmin(iter: impl Iterator<Item = f64>) -> usize {
    iter.enumerate()
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .expect("non-empty")
}
