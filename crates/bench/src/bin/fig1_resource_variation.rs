//! Reproduces **Figure 1** of the paper: two days of resource-usage
//! variation on the shared cluster.
//!
//! * Fig. 1(a) — CPU load of two nodes (A, B) and the 20-node average.
//! * Fig. 1(b) — network I/O (NIC flow rate) of the same nodes + average.
//! * Fig. 1(c) — average CPU utilization and memory usage across nodes.
//!
//! Output: `results/fig1a_cpu_load.csv`, `fig1b_network_io.csv`,
//! `fig1c_util_mem.csv` (one row per 10-minute bucket over 48 h) plus a
//! stdout summary against the paper's reported bands.

use nlrm_bench::plot::LinePlot;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_obs::Progress;
use nlrm_sim_core::series::TimeSeries;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;

fn main() {
    let progress = Progress::start("fig1_resource_variation");
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let hours = if std::env::var("NLRM_QUICK").is_ok() {
        6
    } else {
        48
    };
    progress.block(format!(
        "== Fig. 1: resource-usage variation over {hours} h (seed {seed}) ==\n"
    ));

    let mut cluster = iitk_cluster(seed);
    // Node A: a hot node; node B: a quiet one. Pick by observed mean load
    // over the first simulated hour so the roles match the paper's framing.
    let mut probe = cluster.clone();
    let mut means = [0.0f64; 20];
    for _ in 0..60 {
        probe.advance(Duration::from_secs(60));
        for (i, m) in means.iter_mut().enumerate() {
            *m += probe.node_state(NodeId(i as u32)).cpu_load;
        }
    }
    let node_a = NodeId(
        (0..20)
            .max_by(|&a, &b| means[a].total_cmp(&means[b]))
            .unwrap() as u32,
    );
    let node_b = NodeId(
        (0..20)
            .min_by(|&a, &b| means[a].total_cmp(&means[b]))
            .unwrap() as u32,
    );
    progress.block(format!(
        "node A = {} (busiest in first hour), node B = {} (quietest)\n",
        cluster.spec(node_a).hostname,
        cluster.spec(node_b).hostname
    ));

    let mut load_a = TimeSeries::new("load_node_A");
    let mut load_b = TimeSeries::new("load_node_B");
    let mut load_avg = TimeSeries::new("load_avg_20_nodes");
    let mut io_a = TimeSeries::new("netio_node_A_mbps");
    let mut io_b = TimeSeries::new("netio_node_B_mbps");
    let mut io_avg = TimeSeries::new("netio_avg_mbps");
    let mut util_avg = TimeSeries::new("cpu_util_avg");
    let mut mem_avg = TimeSeries::new("mem_used_avg");

    let sample_every = Duration::from_secs(60);
    let total = Duration::from_hours(hours);
    let samples = total.as_secs_f64() as u64 / 60;
    for _ in 0..samples {
        cluster.advance(sample_every);
        let t = cluster.now();
        let (mut lsum, mut iosum, mut usum, mut msum) = (0.0, 0.0, 0.0, 0.0);
        for i in 0..20u32 {
            let s = cluster.node_state(NodeId(i));
            lsum += s.cpu_load;
            iosum += s.flow_rate_mbps;
            usum += s.cpu_util;
            msum += s.mem_used_frac;
        }
        let sa = cluster.node_state(node_a);
        let sb = cluster.node_state(node_b);
        load_a.push(t, sa.cpu_load);
        load_b.push(t, sb.cpu_load);
        load_avg.push(t, lsum / 20.0);
        io_a.push(t, sa.flow_rate_mbps);
        io_b.push(t, sb.flow_rate_mbps);
        io_avg.push(t, iosum / 20.0);
        util_avg.push(t, usum / 20.0);
        mem_avg.push(t, msum / 20.0);
    }

    // resample to 10-minute buckets for the CSVs
    let buckets = (hours * 6) as usize;
    let grid = |s: &TimeSeries| s.resample(SimTime::ZERO, Duration::from_mins(10), buckets);
    let w = |name: &str, series: &[&TimeSeries]| {
        nlrm_bench::report::write_result(name, &TimeSeries::to_csv(series)).expect("write result");
    };
    let (ra, rb, ravg) = (grid(&load_a), grid(&load_b), grid(&load_avg));
    w("fig1a_cpu_load.csv", &[&ra, &rb, &ravg]);
    let (ia, ib, iavg) = (grid(&io_a), grid(&io_b), grid(&io_avg));
    w("fig1b_network_io.csv", &[&ia, &ib, &iavg]);
    let (ua, ma) = (grid(&util_avg), grid(&mem_avg));
    w("fig1c_util_mem.csv", &[&ua, &ma]);

    // SVG figures
    let to_pts = |s: &TimeSeries| -> Vec<(f64, f64)> {
        s.points()
            .iter()
            .map(|&(t, v)| (t.as_secs_f64() / 3600.0, v))
            .collect()
    };
    let mut f1a = LinePlot::new("Fig. 1(a): CPU load variation", "hours", "CPU load");
    f1a.series("node A", to_pts(&ra))
        .series("node B", to_pts(&rb))
        .series("20-node avg", to_pts(&ravg));
    nlrm_bench::report::write_result("fig1a_cpu_load.svg", &f1a.to_svg(760, 360))
        .expect("write result");
    let mut f1b = LinePlot::new("Fig. 1(b): network I/O variation", "hours", "Mbit/s");
    f1b.series("node A", to_pts(&ia))
        .series("node B", to_pts(&ib))
        .series("20-node avg", to_pts(&iavg));
    nlrm_bench::report::write_result("fig1b_network_io.svg", &f1b.to_svg(760, 360))
        .expect("write result");
    let mut f1c = LinePlot::new("Fig. 1(c): CPU utilization & memory", "hours", "fraction");
    f1c.series("cpu util (avg)", to_pts(&ua))
        .series("mem used (avg)", to_pts(&ma));
    nlrm_bench::report::write_result("fig1c_util_mem.svg", &f1c.to_svg(760, 360))
        .expect("write result");

    // paper-band check
    let us = util_avg.summary().unwrap();
    let ms = mem_avg.summary().unwrap();
    let ls = load_avg.summary().unwrap();
    progress.block(format!(
        "average CPU utilization: mean {:.1}% (paper: 20–35%), range [{:.1}%, {:.1}%]",
        us.mean * 100.0,
        us.min * 100.0,
        us.max * 100.0
    ));
    progress.block(format!(
        "average memory usage:    mean {:.1}% (paper: ~25%)",
        ms.mean * 100.0
    ));
    progress.block(format!(
        "average CPU load:        mean {:.2}, max {:.2} (paper: mostly low, occasional spikes)",
        ls.mean, ls.max
    ));
    let a_peak = load_a.summary().unwrap().max;
    let b_mean = load_b.summary().unwrap().mean;
    progress.block(format!(
        "node A peak load {:.1}; node B mean load {:.2} (paper: B typically quite low)",
        a_peak, b_mean
    ));
}
