//! Incident pipeline report: record → replay → root-cause, end to end.
//!
//! Runs five seeded incident storylines through the shared broker
//! scenario with the flight recorder and telemetry loop enabled. Each
//! storyline injects one known root cause and is expected to trip one
//! specific anomaly detector:
//!
//! | storyline          | injected cause                        | detector              | expected top cause     |
//! |--------------------|---------------------------------------|-----------------------|------------------------|
//! | surge-daemon-kills | standard fault storyline (kills)      | `staleness_surge`     | `fault_injection`      |
//! | surge-delayed-rows | delayed node-state daemons, headless  | `staleness_surge`     | `fault_injection`      |
//! | starve-huge-job    | unplaceable 64-proc head-of-queue job | `starvation`          | `oversized_reservation`|
//! | collapse-node-kills| seven of eight nodes killed           | `utilization_collapse`| `fault_injection`      |
//! | load-spike-exec    | 32-proc lease landed across the fleet | `load_spike`          | `lease_placement`      |
//!
//! For each storyline the report checks three things:
//!
//! 1. **Replay fidelity** — the flight record is re-driven through
//!    [`nlrm_bench::scenario::rerun_from`] and must reproduce the
//!    original bit-for-bit ([`nlrm_obs::replay::compare`]);
//! 2. **Root cause** — [`nlrm_obs::rca::analyze`] on the trigger event
//!    must rank the injected cause first;
//! 3. **Recording overhead** — wall-clock spent inside recorder calls
//!    must stay under 5% of the scenario runtime.
//!
//! Output:
//!
//! - `results/incident_report.json` — per-storyline trigger, ranked
//!   cause chain, replay report, and record shape;
//! - `results/incident_report.md` — the same as a table plus one
//!   rendered cause chain;
//! - `BENCH_incident.json` — the gated summary (repo root on full runs,
//!   results dir on quick).

use nlrm_bench::report::{self, write_result, Table};
use nlrm_bench::scenario::{self, ArrivalSpec, ScenarioRun, ScenarioSpec};
use nlrm_monitor::{DaemonKind, FaultTarget, MonitorFaultPlan};
use nlrm_obs::{json, rca, replay, EventKind, Progress, RcaReport, ReplayReport};
use nlrm_sim_core::fault::FaultAction;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::fmt::Write as _;
use std::path::Path;

/// Backward evidence window handed to the RCA engine, covering every
/// storyline's injection-to-detection gap.
const RCA_WINDOW_SECS: u64 = 600;

/// Recorder overhead budget as a fraction of scenario wall time.
const OVERHEAD_BUDGET: f64 = 0.05;

/// One seeded incident with its expected detection and diagnosis.
struct Storyline {
    name: &'static str,
    /// What the incident looks like, for the report.
    blurb: &'static str,
    /// The detector expected to fire.
    detector: &'static str,
    /// The [`rca::CauseKind`] label expected to rank first.
    cause: &'static str,
    spec: ScenarioSpec,
}

/// The five storylines. `quick` shortens the two long-tail staleness
/// runs by one checkpoint; the others are already minimal.
fn storylines(seed: u64, quick: bool) -> Vec<Storyline> {
    let surge_cps: &[u64] = if quick {
        &[1100, 1300]
    } else {
        &[1100, 1300, 1500]
    };
    let mut out = Vec::new();

    let mut spec = ScenarioSpec::new("surge-daemon-kills", seed, surge_cps);
    spec.faulted = true;
    spec.telemetry = true;
    spec.record = true;
    out.push(Storyline {
        name: "surge-daemon-kills",
        blurb: "standard fault storyline: daemon kills, master failover, \
                headless plane, two node-state daemons dead past t=950",
        detector: "staleness_surge",
        cause: "fault_injection",
        spec: spec.standard_arrivals(16),
    });

    // same surge, different mechanism: the node-state daemons are not
    // killed but *delayed* past the staleness bound, with the
    // supervision plane taken headless first so nothing relaunches them
    let mut plan = MonitorFaultPlan::new();
    plan.schedule(
        SimTime::from_secs(700),
        FaultTarget::Master,
        FaultAction::Kill,
    );
    plan.schedule(
        SimTime::from_secs(900),
        FaultTarget::Master,
        FaultAction::Kill,
    );
    plan.schedule(
        SimTime::from_secs(900),
        FaultTarget::Slave,
        FaultAction::Kill,
    );
    for node in [NodeId(4), NodeId(5), NodeId(6)] {
        plan.schedule(
            SimTime::from_secs(950),
            FaultTarget::Daemon(DaemonKind::NodeState(node)),
            FaultAction::Delay(Duration::from_secs(600)),
        );
    }
    let mut spec = ScenarioSpec::new("surge-delayed-rows", seed, surge_cps);
    spec.fault_plan = Some(plan);
    spec.telemetry = true;
    spec.record = true;
    out.push(Storyline {
        name: "surge-delayed-rows",
        blurb: "headless supervision plane, then three node-state daemons \
                delayed 600s so their rows age past the staleness bound",
        detector: "staleness_surge",
        cause: "fault_injection",
        spec: spec.standard_arrivals(16),
    });

    let mut spec = ScenarioSpec::new("starve-huge-job", seed, &[1100, 1300]);
    spec.submit_huge = true;
    spec.telemetry = true;
    spec.record = true;
    out.push(Storyline {
        name: "starve-huge-job",
        blurb: "a 64-proc job on an 8x8 cluster heads the queue forever; \
                its wait crosses the starvation bound",
        detector: "starvation",
        cause: "oversized_reservation",
        spec: spec.standard_arrivals(16),
    });

    let mut plan = MonitorFaultPlan::new();
    for idx in 1..8u32 {
        plan.schedule(
            SimTime::from_secs(1150),
            FaultTarget::Node(NodeId(idx)),
            FaultAction::Kill,
        );
    }
    // the trailing checkpoint exists so telemetry ticks run *after* the
    // scheduling pass that observes the collapsed capacity
    let mut spec = ScenarioSpec::new("collapse-node-kills", seed, &[1100, 1300, 1360]);
    spec.fault_plan = Some(plan);
    spec.telemetry = true;
    spec.record = true;
    out.push(Storyline {
        name: "collapse-node-kills",
        blurb: "seven of eight nodes killed at t=1150 with work queued; \
                utilization collapses to zero",
        detector: "utilization_collapse",
        cause: "fault_injection",
        spec: spec.standard_arrivals(16),
    });

    // checkpoints through 700 warm the load EWMA on a stable baseline;
    // the node samples are 1/5/15-min windowed means, so the derivation
    // at 1000 — five minutes after the lease lands and stays resident —
    // sees the converged jump as one sharp gauge step, and the trailing
    // checkpoint at 1030 lets telemetry ticks read it
    let mut spec = ScenarioSpec::new("load-spike-exec", seed, &[400, 500, 600, 700, 1000, 1030]);
    spec.submit_huge = true; // keeps every checkpoint deriving loads
    spec.telemetry = true;
    spec.record = true;
    spec.lease_load = true;
    spec.complete_prev = false;
    spec.arrivals = vec![ArrivalSpec {
        at_secs: 700,
        name: "spike-32".into(),
        procs: 32,
    }];
    out.push(Storyline {
        name: "load-spike-exec",
        blurb: "a 32-proc lease lands across the whole fleet at t=700 and \
                its load stays resident; mean CPU load jumps 6 sigma",
        detector: "load_spike",
        cause: "lease_placement",
        spec,
    });

    out
}

/// Everything one storyline produced.
struct Outcome {
    name: &'static str,
    blurb: &'static str,
    detector: &'static str,
    expected_cause: &'static str,
    run: ScenarioRun,
    /// Trigger seq + RCA report, when the expected detector fired.
    rca: Option<RcaReport>,
    detector_fired: bool,
    cause_hit: bool,
    replay: ReplayReport,
    overhead_frac: f64,
}

/// Seq of the latest `anomaly_detected` event from `detector`.
fn trigger_seq(run: &ScenarioRun, detector: &str) -> Option<u64> {
    run.obs
        .journal
        .events_of("anomaly_detected")
        .into_iter()
        .rev()
        .find(
            |e| matches!(&e.kind, EventKind::AnomalyDetected { detector: d, .. } if d == detector),
        )
        .map(|e| e.seq)
}

fn run_storyline(progress: &Progress, story: Storyline) -> Outcome {
    progress.phase(story.name);
    let run = scenario::run(&story.spec);
    let record = run.record.as_ref().expect("recording enabled");

    let rca = trigger_seq(&run, story.detector)
        .and_then(|seq| rca::analyze(&run.obs, seq, Duration::from_secs(RCA_WINDOW_SECS)));
    let detector_fired = rca.is_some();
    let cause_hit = rca
        .as_ref()
        .and_then(|r| r.top_cause())
        .is_some_and(|c| c.kind.label() == story.cause);

    let replayed = scenario::rerun_from(record);
    let replay = replay::compare(record, replayed.record.as_ref().expect("replay records"));

    let overhead_frac = if run.wall_secs > 0.0 {
        (run.obs.recorder.wall_nanos() as f64 / 1e9) / run.wall_secs
    } else {
        0.0
    };

    progress.kv("detector_fired", detector_fired);
    progress.kv(
        "recorder_nanos/wall_secs",
        format!("{}/{:.3}", run.obs.recorder.wall_nanos(), run.wall_secs),
    );
    progress.kv("cause_hit", cause_hit);
    progress.kv("replay_identical", replay.is_identical());
    Outcome {
        name: story.name,
        blurb: story.blurb,
        detector: story.detector,
        expected_cause: story.cause,
        run,
        rca,
        detector_fired,
        cause_hit,
        replay,
        overhead_frac,
    }
}

fn outcome_json(o: &Outcome) -> String {
    let record = o.run.record.as_ref().expect("recording enabled");
    let fired: Vec<String> = o
        .run
        .obs
        .journal
        .events_of("anomaly_detected")
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::AnomalyDetected { detector, .. } => Some(json::string(detector)),
            _ => None,
        })
        .collect();
    json::object(&[
        ("name", json::string(o.name)),
        ("blurb", json::string(o.blurb)),
        ("detector", json::string(o.detector)),
        ("expected_cause", json::string(o.expected_cause)),
        ("detector_fired", o.detector_fired.to_string()),
        ("anomalies", json::array(&fired)),
        ("cause_hit", o.cause_hit.to_string()),
        (
            "top_cause",
            o.rca
                .as_ref()
                .and_then(|r| r.top_cause())
                .map(|c| json::string(c.kind.label()))
                .unwrap_or_else(|| "null".to_string()),
        ),
        (
            "rca",
            o.rca
                .as_ref()
                .map(|r| r.to_json())
                .unwrap_or_else(|| "null".to_string()),
        ),
        ("replay", o.replay.to_json()),
        ("overhead_frac", json::num(o.overhead_frac)),
        ("wall_secs", json::num(o.run.wall_secs)),
        (
            "record",
            json::object(&[
                ("arrivals", record.arrivals.len().to_string()),
                ("faults", record.faults.len().to_string()),
                ("streams", record.streams.len().to_string()),
                ("journal_len", record.journal_len.to_string()),
                ("evidence", record.evidence.len().to_string()),
            ]),
        ),
        ("granted", o.run.decisions.len().to_string()),
        ("deferred", o.run.deferred.len().to_string()),
    ])
}

fn main() {
    let progress = Progress::start("incident_report");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    progress.kv("seed", seed);
    progress.kv("quick", quick);

    // one untimed warm-up run so the first timed storyline does not pay
    // cold-start costs (page-in, allocator growth) inside its recorder
    // overhead measurement
    let mut warm = storylines(seed, true);
    scenario::run(&warm.swap_remove(0).spec);

    let outcomes: Vec<Outcome> = storylines(seed, quick)
        .into_iter()
        .map(|s| run_storyline(&progress, s))
        .collect();

    progress.phase("export");
    let total = outcomes.len();
    let rca_hits = outcomes.iter().filter(|o| o.cause_hit).count();
    let replay_identical = outcomes.iter().filter(|o| o.replay.is_identical()).count();
    let max_overhead = outcomes
        .iter()
        .map(|o| o.overhead_frac)
        .fold(0.0f64, f64::max);
    let rca_floor = total - 1; // >= 4 of 5
    let pass =
        replay_identical == total && rca_hits >= rca_floor && max_overhead <= OVERHEAD_BUDGET;

    let params = json::object(&[
        ("seed", seed.to_string()),
        ("quick", quick.to_string()),
        ("nodes", "8".to_string()),
        ("rca_window_s", RCA_WINDOW_SECS.to_string()),
        ("overhead_budget_frac", json::num(OVERHEAD_BUDGET)),
    ]);
    let summary = json::object(&[
        ("storylines", total.to_string()),
        ("rca_hits", rca_hits.to_string()),
        ("rca_floor", rca_floor.to_string()),
        ("replay_identical", replay_identical.to_string()),
        ("max_overhead_frac", json::num(max_overhead)),
        ("pass", pass.to_string()),
    ]);
    let per_story: Vec<String> = outcomes.iter().map(outcome_json).collect();
    let report_json = json::object(&[
        ("params", params),
        ("storylines", json::array(&per_story)),
        ("summary", summary),
    ]);
    json::validate(&report_json).expect("incident_report.json is valid JSON");
    write_result("incident_report.json", &report_json).expect("write result");

    let mut table = Table::new(&[
        "storyline",
        "detector",
        "fired",
        "top cause",
        "hit",
        "replay",
        "overhead",
    ]);
    for o in &outcomes {
        table.row(&[
            o.name.to_string(),
            o.detector.to_string(),
            o.detector_fired.to_string(),
            o.rca
                .as_ref()
                .and_then(|r| r.top_cause())
                .map(|c| c.kind.label().to_string())
                .unwrap_or_else(|| "-".to_string()),
            o.cause_hit.to_string(),
            if o.replay.is_identical() {
                "identical".to_string()
            } else {
                o.replay
                    .divergence
                    .as_ref()
                    .map(|d| d.render())
                    .unwrap_or_default()
            },
            format!("{:.4}%", o.overhead_frac * 100.0),
        ]);
    }
    let mut md = String::new();
    let _ = writeln!(md, "# Incident pipeline report\n");
    let _ = writeln!(
        md,
        "Five seeded incidents, each recorded by the flight recorder, \
         replayed bit-for-bit from the record, and root-caused from the \
         trigger event. `hit` means the injected cause ranked first.\n"
    );
    md.push_str(&table.to_markdown());
    let _ = writeln!(
        md,
        "\nSummary: {rca_hits}/{total} causes ranked first (floor \
         {rca_floor}), {replay_identical}/{total} replays identical, max \
         recorder overhead {:.4}% (budget {:.0}%).",
        max_overhead * 100.0,
        OVERHEAD_BUDGET * 100.0
    );
    if let Some(r) = outcomes.iter().find_map(|o| o.rca.as_ref()) {
        let _ = writeln!(md, "\n## Example cause chain\n");
        let _ = writeln!(md, "```\n{}```", r.render());
    }
    write_result("incident_report.md", &md).expect("write result");

    let bench = json::object(&[
        ("bench", json::string("incident_report")),
        ("quick", quick.to_string()),
        ("seed", seed.to_string()),
        ("storylines", total.to_string()),
        ("rca_hits", rca_hits.to_string()),
        ("rca_floor", rca_floor.to_string()),
        ("replay_identical", replay_identical.to_string()),
        (
            "all_replays_identical",
            (replay_identical == total).to_string(),
        ),
        ("max_overhead_frac", json::num(max_overhead)),
        ("overhead_budget_frac", json::num(OVERHEAD_BUDGET)),
        (
            "within_budget",
            (max_overhead <= OVERHEAD_BUDGET).to_string(),
        ),
        ("pass", pass.to_string()),
    ]);
    json::validate(&bench).expect("BENCH_incident.json is valid JSON");
    // BENCH_*.json at the repository root are the committed perf
    // trajectory — only full runs belong there; quick (CI smoke) runs
    // land next to the other generated results instead
    let out = if quick {
        report::results_dir().join("BENCH_incident.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .join("BENCH_incident.json")
    };
    std::fs::write(&out, &bench).expect("write BENCH_incident.json");
    if !nlrm_obs::progress::quiet() {
        println!("wrote {}", out.display());
        print!("{}", table.to_markdown());
    }

    progress.kv("rca_hits", format!("{rca_hits}/{total}"));
    progress.kv("replay_identical", format!("{replay_identical}/{total}"));
    progress.kv("max_overhead", format!("{max_overhead:.5}"));
    progress.kv("pass", pass);
    progress.done();
}
