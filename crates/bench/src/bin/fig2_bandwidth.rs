//! Reproduces **Figure 2** of the paper: P2P bandwidth variation.
//!
//! * Fig. 2(a) — 30×30 heatmap of measured P2P bandwidth (averaged over 10
//!   probe sweeps): light/dark patches following topology with
//!   background-traffic fluctuation on top.
//! * Fig. 2(b) — bandwidth of three randomly-chosen node pairs over 48 h
//!   (5-minute probes): fluctuation around a topology-determined base.
//!
//! Output: `results/fig2a_heatmap.txt` (ASCII), `fig2a_bandwidth.csv`
//! (matrix), `fig2b_pairs.csv` (time series).

use nlrm_bench::heatmap;
use nlrm_bench::plot::{heatmap_svg, LinePlot};
use nlrm_bench::report::write_result;
use nlrm_cluster::iitk::iitk30;
use nlrm_monitor::SymMatrix;
use nlrm_obs::Progress;
use nlrm_sim_core::series::TimeSeries;
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;

fn main() {
    let progress = Progress::start("fig2_bandwidth");
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let hours = if std::env::var("NLRM_QUICK").is_ok() {
        6
    } else {
        48
    };
    progress.block(format!(
        "== Fig. 2: P2P bandwidth variation (seed {seed}) ==\n"
    ));

    let mut cluster = iitk30(seed);
    cluster.advance(Duration::from_mins(30)); // settle

    // --- Fig. 2(a): 10-sweep average of the full matrix ---
    let n = cluster.num_nodes();
    let mut sum = SymMatrix::new(n, 0.0f64);
    for _ in 0..10 {
        cluster.advance(Duration::from_mins(5));
        for i in 0..n {
            for j in (i + 1)..n {
                let (u, v) = (NodeId(i as u32), NodeId(j as u32));
                let bw = cluster.measure_bandwidth_bps(u, v);
                sum.set(u, v, sum.get(u, v) + bw / 10.0);
            }
        }
    }
    // The paper's heatmap colors by bandwidth; ours shades by *complement*
    // (darker = less available), matching Fig. 7's convention.
    let mut complement = SymMatrix::new(n, 0.0f64);
    for (u, v, bw) in sum.pairs() {
        let peak = cluster.peak_bandwidth_bps(u, v);
        complement.set(u, v, (peak - bw).max(0.0) / 1e6); // Mbit/s
    }
    let labels: Vec<String> = (0..n)
        .map(|i| cluster.spec(NodeId(i as u32)).hostname.clone())
        .collect();
    let art = heatmap::render(&complement, &labels);
    progress.block("-- Fig. 2(a): complement of available bandwidth (Mbit/s), 10-sweep average --");
    progress.block(&art);
    write_result("fig2a_heatmap.txt", &art).expect("write result");
    write_result(
        "fig2a_heatmap.svg",
        &heatmap_svg(
            &complement,
            &labels,
            "Fig. 2(a): complement of available P2P bandwidth (Mbit/s)",
        ),
    )
    .expect("write result");

    let mut csv = String::from("u,v,avail_mbps,complement_mbps,same_switch\n");
    let mut same_sum = (0.0, 0usize);
    let mut cross_sum = (0.0, 0usize);
    for (u, v, bw) in sum.pairs() {
        let same = cluster.topology().switch_of(u) == cluster.topology().switch_of(v);
        csv.push_str(&format!(
            "{},{},{:.1},{:.1},{}\n",
            u.0,
            v.0,
            bw / 1e6,
            complement.get(u, v),
            same
        ));
        if same {
            same_sum = (same_sum.0 + bw / 1e6, same_sum.1 + 1);
        } else {
            cross_sum = (cross_sum.0 + bw / 1e6, cross_sum.1 + 1);
        }
    }
    write_result("fig2a_bandwidth.csv", &csv).expect("write result");
    progress.block(format!(
        "same-switch mean available: {:.0} Mbit/s over {} pairs; cross-switch: {:.0} Mbit/s over {} pairs",
        same_sum.0 / same_sum.1 as f64,
        same_sum.1,
        cross_sum.0 / cross_sum.1 as f64,
        cross_sum.1
    ));
    progress.block(
        "(paper: closer nodes have somewhat higher bandwidth, with strong per-pair variation)\n",
    );

    // --- Fig. 2(b): three pairs over 48 h at 5-minute probes ---
    // one same-switch pair, one adjacent-switch pair, one far pair
    let pairs = [
        (NodeId(1), NodeId(4)),
        (NodeId(2), NodeId(12)),
        (NodeId(5), NodeId(25)),
    ];
    let mut series: Vec<TimeSeries> = pairs
        .iter()
        .map(|&(u, v)| {
            TimeSeries::new(format!(
                "{}-{}",
                cluster.spec(u).hostname,
                cluster.spec(v).hostname
            ))
        })
        .collect();
    let probes = hours * 12;
    for _ in 0..probes {
        cluster.advance(Duration::from_mins(5));
        let t = cluster.now();
        for (s, &(u, v)) in series.iter_mut().zip(&pairs) {
            s.push(t, cluster.measure_bandwidth_bps(u, v) / 1e6);
        }
    }
    let refs: Vec<&TimeSeries> = series.iter().collect();
    write_result("fig2b_pairs.csv", &TimeSeries::to_csv(&refs)).expect("write result");
    let mut f2b = LinePlot::new("Fig. 2(b): P2P bandwidth over time", "hours", "Mbit/s");
    for s in &series {
        f2b.series(
            &s.name,
            s.points()
                .iter()
                .map(|&(t, v)| (t.as_secs_f64() / 3600.0, v))
                .collect(),
        );
    }
    write_result("fig2b_pairs.svg", &f2b.to_svg(760, 360)).expect("write result");
    for s in &series {
        let sm = s.summary().unwrap();
        progress.block(format!(
            "pair {:<18} mean {:>6.0} Mbit/s, min {:>6.0}, max {:>6.0}, CoV {:.2}",
            s.name,
            sm.mean,
            sm.min,
            sm.max,
            sm.cov()
        ));
    }
    progress
        .block("(paper: per-pair bandwidth fluctuates significantly around a topology base value)");
}
