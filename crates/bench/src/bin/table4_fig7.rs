//! Reproduces **Table 4 and Figure 7** of the paper: the resource-allocation
//! analysis for one miniMD run (32 processes, 4 per node, s = 16).
//!
//! Table 4 reports, for the 8-node group each policy chose: the average CPU
//! load, the average complement-of-available-bandwidth, and the average
//! latency over all P2P links inside the group — at allocation time.
//!
//! Figure 7 shows the cluster state behind those numbers: the P2P bandwidth
//! heatmap, which nodes each policy selected, and each node's CPU load.
//!
//! Outputs: `results/table4_group_state.md`, `results/fig7_analysis.txt`.

use nlrm_apps::MiniMd;
use nlrm_bench::heatmap;
use nlrm_bench::plot::heatmap_svg;
use nlrm_bench::report::{write_result, Table};
use nlrm_bench::runner::{paper_policies, Experiment};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::AllocationRequest;
use nlrm_monitor::SymMatrix;
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;

fn main() {
    let progress = Progress::start("table4_fig7");
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022);
    progress.block(format!(
        "== Table 4 / Fig. 7: allocation analysis, miniMD 32 procs, s=16 (seed {seed}) ==\n"
    ));

    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(900));
    let snap = env.snapshot();
    let req = AllocationRequest::minimd(32);
    let workload = MiniMd::new(16);

    let mut table4 = Table::new(&[
        "Algorithm",
        "Avg. CPU load",
        "Avg. complement BW (Mbit/s)",
        "Avg. latency (us)",
        "Execution time (s)",
    ]);
    let mut fig7 = String::new();

    // Fig. 7 top: the bandwidth heatmap at allocation time (complement, so
    // darker = less available, matching the paper's shading).
    let n = env.cluster.num_nodes();
    let mut complement = SymMatrix::new(n, 0.0f64);
    for (u, v, bw) in snap.bandwidth_bps.pairs() {
        let peak = snap.peak_bandwidth_bps.get(u, v);
        if peak.is_finite() {
            complement.set(u, v, (peak - bw).max(0.0) / 1e6);
        }
    }
    let labels: Vec<String> = (0..n)
        .map(|i| env.cluster.spec(NodeId(i as u32)).hostname.clone())
        .collect();
    fig7.push_str(
        "P2P complement-of-available-bandwidth at allocation time (darker = less available):\n",
    );
    fig7.push_str(&heatmap::render(&complement, &labels));
    fig7.push('\n');

    let mut results = Vec::new();
    for mut policy in paper_policies(seed) {
        let r = env
            .run_policy(policy.as_mut(), &snap, &req, &workload)
            .expect("allocation failed");
        let group = r.allocation.node_list();

        // Table 4 columns, computed exactly as the paper describes (§5.3)
        let avg_load: f64 = group
            .iter()
            .map(|&u| snap.info(u).unwrap().sample.cpu_load.m1)
            .sum::<f64>()
            / group.len() as f64;
        let mut cbw = 0.0;
        let mut lat = 0.0;
        let mut pairs = 0usize;
        for (i, &u) in group.iter().enumerate() {
            for &v in &group[i + 1..] {
                let peak = snap.peak_bandwidth_bps.get(u, v);
                cbw += (peak - snap.bandwidth_bps.get(u, v)).max(0.0) / 1e6;
                lat += snap.latency.get(u, v).instant * 1e6;
                pairs += 1;
            }
        }
        let (cbw, lat) = (cbw / pairs as f64, lat / pairs as f64);
        table4.row(&[
            r.policy.clone(),
            format!("{avg_load:.3}"),
            format!("{cbw:.0}"),
            format!("{lat:.0}"),
            format!("{:.2}", r.timing.total_s),
        ]);

        // Fig. 7 middle: the selection strip; bottom: per-node CPU load
        fig7.push_str(&format!(
            "{:<22} {}\n",
            r.policy,
            heatmap::selection_strip(n, &group)
        ));
        results.push(r);
    }
    fig7.push_str(&format!(
        "{:<22} {}\n",
        "switch boundaries",
        (0..n)
            .map(|i| if i % 15 == 0 && i > 0 { '|' } else { ' ' })
            .collect::<String>()
    ));
    fig7.push_str("\nper-node CPU load (1-min mean) at allocation time:\n");
    for i in 0..n {
        let node = NodeId(i as u32);
        if let Some(info) = snap.info(node) {
            fig7.push_str(&format!(
                "{:>8}: {:>6.2} {}\n",
                info.sample.spec.hostname,
                info.sample.cpu_load.m1,
                "#".repeat((info.sample.cpu_load.m1.min(30.0) * 2.0) as usize)
            ));
        }
    }

    progress.block("-- Table 4: state of each policy's allocated group --");
    progress.block(table4.to_markdown());
    progress.block("(paper: NLA group had the lowest complement BW and latency, and\n low CPU load — slightly above load-aware's — yet ran fastest)\n");
    progress.block(&fig7);
    write_result("table4_group_state.md", &table4.to_markdown()).expect("write result");
    write_result("fig7_analysis.txt", &fig7).expect("write result");
    write_result(
        "fig7_heatmap.svg",
        &heatmap_svg(
            &complement,
            &labels,
            "Fig. 7: complement of available P2P bandwidth at allocation time",
        ),
    )
    .expect("write result");

    // headline sanity line like the paper's §5.3 narrative
    let by_policy = |name: &str| {
        results
            .iter()
            .find(|r| r.policy == name)
            .map(|r| r.timing.total_s)
            .unwrap_or(f64::NAN)
    };
    progress.block(format!(
        "execution times: NLA {:.2} s | load-aware {:.2} s | sequential {:.2} s | random {:.2} s",
        by_policy("network-load-aware"),
        by_policy("load-aware"),
        by_policy("sequential"),
        by_policy("random"),
    ));
}
