//! Fault sweep: daemon kill-rate vs. allocation quality.
//!
//! The monitoring stack is the allocator's only window on the cluster, so
//! the interesting failure question is not "do daemons crash?" but "how
//! much allocation quality survives when they do?". This sweep injects
//! random daemon faults (kill / hang / delayed writes) at a per-round
//! probability swept from 0 to 0.3, plus one master central-monitor kill
//! per faulty run, then measures the network-and-load-aware allocator at
//! checkpoints while the supervisor relaunches what died.
//!
//! Output: `results/fault_sweep.json` — per-trial rows plus per-rate
//! summary (allocation success rate, mean job time, relaunch/failover
//! counts).

use nlrm_apps::MiniMd;
use nlrm_bench::report::{write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::{AllocationRequest, NetworkLoadAwarePolicy};
use nlrm_monitor::{DaemonKind, FaultTarget, MonitorFaultPlan};
use nlrm_obs::Progress;
use nlrm_sim_core::fault::FaultAction;
use nlrm_sim_core::rng::RngFactory;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use rand::Rng;

/// One allocation checkpoint under a faulty monitoring stack.
struct TrialRow {
    kill_rate: f64,
    rep: usize,
    checkpoint_s: u64,
    alloc_ok: bool,
    time_s: f64,
    usable_nodes: usize,
    relaunches: usize,
    failovers: usize,
}

/// Random fault plan: every `round_s` seconds each daemon is hit with
/// probability `rate`; the action is a kill half the time, otherwise a
/// hang or a write delay of 1–5 minutes. One master kill is scheduled
/// mid-run whenever `rate > 0`.
fn random_plan(
    rate: f64,
    n_nodes: usize,
    start_s: u64,
    end_s: u64,
    round_s: u64,
    rng: &mut impl Rng,
) -> MonitorFaultPlan {
    let mut plan = MonitorFaultPlan::new();
    let mut kinds: Vec<DaemonKind> = vec![
        DaemonKind::Livehosts,
        DaemonKind::Latency,
        DaemonKind::Bandwidth,
    ];
    kinds.extend((0..n_nodes).map(|i| DaemonKind::NodeState(NodeId(i as u32))));
    let mut t = start_s;
    while t < end_s {
        for &kind in &kinds {
            if rate > 0.0 && rng.gen_bool(rate) {
                let action = match rng.gen_range(0..4) {
                    0 | 1 => FaultAction::Kill,
                    2 => FaultAction::Hang(Duration::from_secs(rng.gen_range(60..300))),
                    _ => FaultAction::Delay(Duration::from_secs(rng.gen_range(60..300))),
                };
                plan.schedule(SimTime::from_secs(t), FaultTarget::Daemon(kind), action);
            }
        }
        t += round_s;
    }
    if rate > 0.0 {
        let mid = start_s + (end_s - start_s) / 2;
        plan.schedule(
            SimTime::from_secs(mid),
            FaultTarget::Master,
            FaultAction::Kill,
        );
    }
    plan
}

fn main() {
    let progress = Progress::start("fault_sweep");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025);
    let reps = if quick { 2 } else { 4 };
    let steps = if quick { 10 } else { 40 };
    let checkpoints: &[u64] = if quick {
        &[900, 1800]
    } else {
        &[600, 1200, 1800, 2400]
    };
    let rates = [0.0, 0.05, 0.1, 0.2, 0.3];

    progress.block(format!(
        "== Fault sweep: daemon kill-rate vs allocation quality (reps {reps}, seed {seed}) ==\n"
    ));

    let factory = RngFactory::new(seed);
    let workload = MiniMd::new(16).with_steps(steps);
    let req = AllocationRequest::minimd(16);
    let end_s = checkpoints.last().copied().unwrap() + 300;

    let mut rows: Vec<TrialRow> = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        for rep in 0..reps {
            let mut env = Experiment::new(iitk_cluster(seed + rep as u64));
            let n_nodes = env.cluster.num_nodes();
            env.advance(Duration::from_secs(360));
            let mut rng = factory.stream("fault-plan", (ri * 100 + rep) as u64);
            let plan = random_plan(rate, n_nodes, 400, end_s, 60, &mut rng);
            env.monitor.set_fault_plan(plan);
            for &cp in checkpoints {
                let target = SimTime::from_secs(cp);
                let d = target.since(env.cluster.now());
                env.advance(d);
                let snap = env.snapshot();
                let trial =
                    env.run_policy(&mut NetworkLoadAwarePolicy::new(), &snap, &req, &workload);
                let (ok, time_s) = match trial {
                    Ok(r) => (true, r.timing.total_s),
                    Err(_) => (false, f64::NAN),
                };
                rows.push(TrialRow {
                    kill_rate: rate,
                    rep,
                    checkpoint_s: cp,
                    alloc_ok: ok,
                    time_s,
                    usable_nodes: snap.usable_nodes().len(),
                    relaunches: env.monitor.central().relaunch_count,
                    failovers: env.monitor.central().failover_count,
                });
            }
        }
    }

    // per-rate summary
    let mut table = Table::new(&[
        "kill rate",
        "alloc success",
        "mean time (s)",
        "vs fault-free",
        "relaunches",
        "failovers",
    ]);
    let mut summaries: Vec<(f64, f64, f64, usize, usize)> = Vec::new();
    for &rate in &rates {
        let sel: Vec<&TrialRow> = rows.iter().filter(|r| r.kill_rate == rate).collect();
        let ok: Vec<&&TrialRow> = sel.iter().filter(|r| r.alloc_ok).collect();
        let success = ok.len() as f64 / sel.len() as f64;
        let mean_time = if ok.is_empty() {
            f64::NAN
        } else {
            ok.iter().map(|r| r.time_s).sum::<f64>() / ok.len() as f64
        };
        let relaunches = sel.iter().map(|r| r.relaunches).max().unwrap_or(0);
        let failovers = sel.iter().map(|r| r.failovers).max().unwrap_or(0);
        summaries.push((rate, success, mean_time, relaunches, failovers));
    }
    let base_time = summaries[0].2;
    for &(rate, success, mean_time, relaunches, failovers) in &summaries {
        table.row(&[
            format!("{rate:.2}"),
            format!("{:.0}%", success * 100.0),
            format!("{mean_time:.2}"),
            format!("{:+.1}%", (mean_time / base_time - 1.0) * 100.0),
            format!("{relaunches}"),
            format!("{failovers}"),
        ]);
    }
    progress.block(table.to_markdown());
    progress.block("(expected: success stays 100% and time degrades gracefully while the");
    progress.block(" supervisor keeps relaunching daemons; stale data, not crashes, costs time)");

    // hand-rolled JSON (no serde_json in the tree)
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"seed\": {seed},\n  \"reps\": {reps},\n"));
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let time = if r.time_s.is_nan() {
            "null".to_string()
        } else {
            format!("{:.4}", r.time_s)
        };
        json.push_str(&format!(
            "    {{\"kill_rate\": {}, \"rep\": {}, \"checkpoint_s\": {}, \"alloc_ok\": {}, \
             \"time_s\": {}, \"usable_nodes\": {}, \"relaunches\": {}, \"failovers\": {}}}{}\n",
            r.kill_rate,
            r.rep,
            r.checkpoint_s,
            r.alloc_ok,
            time,
            r.usable_nodes,
            r.relaunches,
            r.failovers,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"summary\": [\n");
    for (i, &(rate, success, mean_time, relaunches, failovers)) in summaries.iter().enumerate() {
        let time = if mean_time.is_nan() {
            "null".to_string()
        } else {
            format!("{mean_time:.4}")
        };
        json.push_str(&format!(
            "    {{\"kill_rate\": {rate}, \"alloc_success\": {success:.4}, \"mean_time_s\": {time}, \
             \"relaunches\": {relaunches}, \"failovers\": {failovers}}}{}\n",
            if i + 1 == summaries.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    write_result("fault_sweep.json", &json).expect("write result");
}
