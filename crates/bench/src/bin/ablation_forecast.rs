//! Ablation: NWS-style forecasting vs stale snapshots.
//!
//! Extends `ablation_staleness`: when the allocator must decide on data
//! that is Δ old (slow daemons, long queues), does projecting the snapshot
//! with the [`ForecastEngine`]
//! recover part of the loss? Three allocators face the same Δ-stale world:
//!
//! * **oracle** — decides on a fresh snapshot (upper bound),
//! * **stale**  — decides on the Δ-old snapshot as-is,
//! * **forecast** — decides on the Δ-old snapshot projected forward by an
//!   engine trained on the preceding monitoring history.
//!
//! Output: `results/ablation_forecast.csv`.

use nlrm_apps::MiniMd;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::{AllocationRequest, NetworkLoadAwarePolicy};
use nlrm_monitor::forecast::ForecastEngine;
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;

fn main() {
    let progress = Progress::start("ablation_forecast");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2027);
    let reps = if quick { 3 } else { 8 };
    let steps = if quick { 30 } else { 100 };
    let delays_s: Vec<u64> = vec![300, 900, 1800];

    progress.block(format!(
        "== Ablation: forecasting vs staleness (reps {reps}, seed {seed}) ==\n"
    ));
    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600));
    let workload = MiniMd::new(16).with_steps(steps);
    let req = AllocationRequest::minimd(32);

    let mut table = Table::new(&[
        "staleness",
        "oracle (fresh)",
        "stale",
        "forecast",
        "recovered",
    ]);
    let mut csv = String::from("staleness_s,variant,rep,time_s\n");

    for &delay in &delays_s {
        let mut sums = [0.0f64; 3];
        for rep in 0..reps {
            env.advance(Duration::from_secs(300));

            // train an engine on the last ~20 minutes of snapshots
            let mut engine = ForecastEngine::new(env.cluster.num_nodes());
            let mut trainer = env.clone();
            for _ in 0..20 {
                trainer.advance(Duration::from_secs(60));
                engine.observe(&trainer.snapshot());
            }
            // `trainer` is now the decision instant; its snapshot is fresh…
            let fresh = trainer.snapshot();
            // …while the decision-time world for stale variants is the
            // snapshot from `delay` earlier
            let mut stale_source = env.clone();
            let lead = (20u64 * 60).saturating_sub(delay);
            stale_source.advance(Duration::from_secs(lead));
            let stale = stale_source.snapshot();
            let projected = engine.project(&stale);

            let variants = [
                ("oracle", &fresh),
                ("stale", &stale),
                ("forecast", &projected),
            ];
            for (i, (name, snap)) in variants.iter().enumerate() {
                let r = trainer
                    .run_policy(&mut NetworkLoadAwarePolicy::new(), snap, &req, &workload)
                    .expect("allocation failed");
                sums[i] += r.timing.total_s;
                csv.push_str(&format!("{delay},{name},{rep},{:.4}\n", r.timing.total_s));
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / reps as f64).collect();
        let (oracle, stale, forecast) = (means[0], means[1], means[2]);
        let recovered = if stale > oracle {
            ((stale - forecast) / (stale - oracle) * 100.0).clamp(-999.0, 100.0)
        } else {
            0.0
        };
        table.row(&[
            format!("{delay} s"),
            fmt_secs(oracle),
            fmt_secs(stale),
            fmt_secs(forecast),
            format!("{recovered:.0}%"),
        ]);
    }
    progress.block(table.to_markdown());
    progress.block("('recovered' = share of the stale-vs-oracle gap closed by forecasting)");
    write_result("ablation_forecast.csv", &csv).expect("write result");
}
