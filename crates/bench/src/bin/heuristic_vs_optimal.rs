//! Validation: the greedy heuristic (Algorithms 1–2) against the exhaustive
//! optimum.
//!
//! The paper argues brute-force sub-graph search "would not scale well" and
//! offers the O(V² log V) greedy instead, without quantifying the quality
//! gap. This experiment measures it on clusters small enough to enumerate:
//! for each trial, both allocators score their chosen group under the same
//! globally-normalized Eq. 4 objective, and both groups execute the same
//! miniMD run.
//!
//! Output: `results/heuristic_vs_optimal.csv`.

use nlrm_apps::MiniMd;
use nlrm_bench::report::{write_result, Table};
use nlrm_bench::runner::Experiment;
use nlrm_cluster::iitk::small_cluster;
use nlrm_core::loads::Loads;
use nlrm_core::select::group_cost;
use nlrm_core::{AllocationRequest, BruteForcePolicy, NetworkLoadAwarePolicy};
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;

fn main() {
    let progress = Progress::start("heuristic_vs_optimal");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026);
    let trials = if quick { 5 } else { 20 };
    let cluster_sizes = [10usize, 12, 14, 16];

    progress.block(format!(
        "== Heuristic vs brute-force optimum (trials {trials}/size, seed {seed}) ==\n"
    ));
    let mut table = Table::new(&[
        "cluster size",
        "mean cost gap",
        "max cost gap",
        "optimal group found",
        "mean time gap",
    ]);
    let mut csv = String::from(
        "cluster_size,trial,heuristic_cost,optimal_cost,heuristic_time_s,optimal_time_s\n",
    );

    for &n in &cluster_sizes {
        let mut env = Experiment::new(small_cluster(n, seed + n as u64));
        env.advance(Duration::from_secs(600));
        let req = AllocationRequest::minimd(16); // 4 nodes of `n`
        let workload = MiniMd::new(16).with_steps(if quick { 20 } else { 50 });

        let mut cost_gaps = Vec::new();
        let mut time_gaps = Vec::new();
        let mut exact_hits = 0usize;
        for trial in 0..trials {
            env.advance(Duration::from_secs(300));
            let snap = env.snapshot();
            let loads = Loads::derive(&snap, &req.compute_weights, &req.network_weights, req.ppn)
                .expect("loads");
            let h = env
                .run_policy(&mut NetworkLoadAwarePolicy::new(), &snap, &req, &workload)
                .expect("heuristic");
            let o = env
                .run_policy(&mut BruteForcePolicy::new(), &snap, &req, &workload)
                .expect("brute force");
            let hc = group_cost(&loads, &h.allocation.node_list(), req.alpha, req.beta);
            let oc = group_cost(&loads, &o.allocation.node_list(), req.alpha, req.beta);
            assert!(oc <= hc + 1e-9, "optimum must not be worse: {oc} vs {hc}");
            let mut h_nodes = h.allocation.node_list();
            let mut o_nodes = o.allocation.node_list();
            h_nodes.sort();
            o_nodes.sort();
            if h_nodes == o_nodes {
                exact_hits += 1;
            }
            cost_gaps.push(if oc > 0.0 { hc / oc - 1.0 } else { 0.0 });
            time_gaps.push(h.timing.total_s / o.timing.total_s - 1.0);
            csv.push_str(&format!(
                "{n},{trial},{hc:.6},{oc:.6},{:.4},{:.4}\n",
                h.timing.total_s, o.timing.total_s
            ));
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        table.row(&[
            n.to_string(),
            format!("{:+.1}%", mean(&cost_gaps) * 100.0),
            format!("{:+.1}%", max(&cost_gaps) * 100.0),
            format!("{exact_hits}/{trials}"),
            format!("{:+.1}%", mean(&time_gaps) * 100.0),
        ]);
    }
    progress.block(table.to_markdown());
    progress.block("(cost gap: Eq. 4 objective of greedy ÷ optimum − 1; time gap: execution time)");
    write_result("heuristic_vs_optimal.csv", &csv).expect("write result");
}
