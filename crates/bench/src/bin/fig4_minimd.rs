//! Reproduces **Figure 4, Table 2, and Figure 5** of the paper:
//! miniMD strong scaling under the four allocation policies.
//!
//! Grid: processes ∈ {8, 16, 32, 64} (4 per node), problem size
//! s ∈ {8, 16, 24, 32, 40, 48}, each cell run with all four policies on the
//! same monitored snapshot, repeated 5 times with the cluster evolving
//! between repetitions (the paper's protocol, §5.1).
//!
//! Outputs (stdout + `results/`):
//! * `fig4_minimd.csv` — execution time per (procs, s, policy, rep): Fig. 4.
//! * `table2_minimd_gains.md` — average/median/maximum gains: Table 2.
//! * `fig5_load_per_core.md` — mean CPU load per logical core per policy.
//!
//! Env: `NLRM_QUICK=1` shrinks the grid for smoke runs;
//! `NLRM_SEED=<n>` changes the cluster seed (default 2020).

use nlrm_apps::MiniMd;
use nlrm_bench::gains::{GainTable, PolicyTimes};
use nlrm_bench::plot::LinePlot;
use nlrm_bench::report::{fmt_secs, write_result, Table};
use nlrm_bench::runner::{paper_policies, Experiment};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::AllocationRequest;
use nlrm_obs::Progress;
use nlrm_sim_core::time::Duration;
use std::collections::BTreeMap;

fn main() {
    let progress = Progress::start("fig4_minimd");
    let quick = std::env::var("NLRM_QUICK").is_ok();
    let seed: u64 = std::env::var("NLRM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2020);
    let (procs_grid, sizes, reps, steps) = if quick {
        (vec![8u32, 32], vec![8u32, 24], 2usize, 30usize)
    } else {
        (
            vec![8u32, 16, 32, 64],
            vec![8u32, 16, 24, 32, 40, 48],
            5usize,
            100usize,
        )
    };

    progress.block("== Fig. 4 / Table 2 / Fig. 5: miniMD strong scaling ==");
    progress.block(format!(
        "grid: procs={procs_grid:?} sizes={sizes:?} reps={reps} steps={steps} seed={seed}\n"
    ));

    let mut env = Experiment::new(iitk_cluster(seed));
    env.advance(Duration::from_secs(600)); // warm the monitor

    let mut csv = String::from("procs,s,policy,rep,time_s,load_per_core,comm_fraction\n");
    let mut times = PolicyTimes::new();
    // per-configuration CoV over the repetitions (the paper's stability
    // metric), averaged over all cells at the end
    let mut cell_covs: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut load_acc: BTreeMap<String, (f64, usize)> = BTreeMap::new();

    for &procs in &procs_grid {
        // per-procs table mirroring one Fig. 4 sub-plot
        let mut fig = Table::new(&[
            "s",
            "random",
            "sequential",
            "load-aware",
            "network-load-aware",
        ]);
        // collect mean-over-reps per policy per size
        let mut cell: BTreeMap<(u32, String), Vec<f64>> = BTreeMap::new();
        for &s in &sizes {
            let req = AllocationRequest::minimd(procs);
            let workload = MiniMd::new(s).with_steps(steps);
            for rep in 0..reps {
                // evolve the shared cluster between repetitions
                env.advance(Duration::from_secs(300));
                let mut policies = paper_policies(seed ^ (rep as u64) << 8 ^ s as u64);
                let results = env
                    .compare(&mut policies, &req, &workload)
                    .expect("allocation failed");
                for r in &results {
                    times.push(&r.policy, r.timing.total_s);
                    cell.entry((s, r.policy.clone()))
                        .or_default()
                        .push(r.timing.total_s);
                    let e = load_acc.entry(r.policy.clone()).or_insert((0.0, 0));
                    e.0 += r.timing.mean_load_per_core;
                    e.1 += 1;
                    csv.push_str(&format!(
                        "{procs},{s},{},{rep},{:.4},{:.4},{:.4}\n",
                        r.policy,
                        r.timing.total_s,
                        r.timing.mean_load_per_core,
                        r.timing.comm_fraction()
                    ));
                }
            }
        }
        for ((_sz, policy), v) in &cell {
            if let Some(sum) = nlrm_sim_core::stats::Summary::of(v) {
                cell_covs.entry(policy.clone()).or_default().push(sum.cov());
            }
        }
        for &s in &sizes {
            let mean = |policy: &str| {
                let v = &cell[&(s, policy.to_string())];
                v.iter().sum::<f64>() / v.len() as f64
            };
            fig.row(&[
                s.to_string(),
                fmt_secs(mean("random")),
                fmt_secs(mean("sequential")),
                fmt_secs(mean("load-aware")),
                fmt_secs(mean("network-load-aware")),
            ]);
        }
        progress.block(format!(
            "-- execution time (s), {procs} processes (mean of {reps} reps) --"
        ));
        progress.block(fig.to_markdown());
        let mut svg = LinePlot::new(
            &format!("fig4: {procs} processes"),
            "s",
            "execution time (s)",
        );
        for policy in ["random", "sequential", "load-aware", "network-load-aware"] {
            svg.series(
                policy,
                sizes
                    .iter()
                    .map(|&x| {
                        let v = &cell[&(x, policy.to_string())];
                        (x as f64, v.iter().sum::<f64>() / v.len() as f64)
                    })
                    .collect(),
            );
        }
        write_result(&format!("fig4_p{procs}.svg"), &svg.to_svg(560, 340)).expect("write result");
    }

    // Table 2
    let table2 = GainTable::build(&times, "network-load-aware");
    progress.block("-- Table 2: percentage gain of network-and-load-aware --");
    progress.block(table2.to_markdown());

    // Fig. 5 + CoV
    let mut fig5 = Table::new(&["policy", "mean load per logical core", "CoV of exec times"]);
    for policy in times.policies() {
        let (sum, n) = load_acc[&policy];
        let covs = &cell_covs[&policy];
        fig5.row(&[
            policy.clone(),
            format!("{:.2}", sum / n as f64),
            format!("{:.2}", covs.iter().sum::<f64>() / covs.len() as f64),
        ]);
    }
    progress.block("-- Fig. 5: CPU load per logical core during runs --");
    progress.block(fig5.to_markdown());

    write_result("fig4_minimd.csv", &csv).expect("write result");
    write_result("table2_minimd_gains.md", &table2.to_markdown()).expect("write result");
    write_result("fig5_load_per_core.md", &fig5.to_markdown()).expect("write result");
}
