//! Broker throughput under sustained job streams: the scheduling-cycle
//! sweep.
//!
//! Replays synthetic arrival streams (minimd/minife shapes, mixed
//! priority classes, 2–30 minute walltimes) against the 60-node IITK
//! cluster on a 60 s scheduling quantum and reports, per arm:
//!
//! * sustained scheduling throughput (jobs started per wall-clock second
//!   spent inside `tick`),
//! * queue-wait p50/p99 in virtual seconds,
//! * utilization (busy proc-seconds over capacity × makespan),
//! * `Loads::derive` calls per tick (the batched cycle's whole point).
//!
//! Arms: the batched network-and-load-aware broker at 10k (and 100k)
//! arrivals, a Slurm-shaped baseline (strict FIFO, first-fit ascending
//! node id, no backfill) at 10k, and an overload arm (~2× offered load,
//! bounded queue with reject admission) counting sheds.
//!
//! Output: `BENCH_broker.json` at the repository root (committed perf
//! trajectory), plus Markdown/CSV tables under `results/`. `NLRM_QUICK=1`
//! shrinks every arm for CI smoke runs; `NLRM_QUIET=1` silences chatter.

use nlrm_bench::report::{self, Table};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::broker::{
    AdmissionPolicy, Broker, BrokerConfig, BrokerEvent, JobId, PriorityClass, SubmitOptions,
};
use nlrm_core::{AllocError, AllocationRequest, Loads};
use nlrm_monitor::{ClusterSnapshot, MonitorRuntime};
use nlrm_obs::{install, Obs};
use nlrm_sim_core::time::{Duration, SimTime};
use std::collections::{BinaryHeap, HashMap};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Virtual scheduling quantum.
const QUANTUM_S: u64 = 60;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Uniform in [0, 1).
fn frac(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// One synthetic arrival.
struct ArrivingJob {
    arrival: SimTime,
    request: AllocationRequest,
    class: PriorityClass,
    walltime: Duration,
}

/// An arrival stream sized to `load_factor` of the cluster's effective
/// capacity: procs cycle the paper's job sizes, walltimes are 120–1800 s,
/// classes mix 10% urgent / 70% normal / 20% batch.
fn make_stream(count: usize, capacity: u64, load_factor: f64, seed: u64) -> Vec<ArrivingJob> {
    let procs = [8u32, 16, 32, 64];
    let mean_procs = procs.iter().map(|&p| p as f64).sum::<f64>() / procs.len() as f64;
    let mean_wall = (120.0 + 1800.0) / 2.0;
    let interarrival = mean_procs * mean_wall / (capacity as f64 * load_factor);
    let mut jobs = Vec::with_capacity(count);
    let mut t = 0.0f64;
    for i in 0..count {
        let h = splitmix64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        let p = procs[i % procs.len()];
        let request = if i % 2 == 0 {
            AllocationRequest::minimd(p)
        } else {
            AllocationRequest::minife(p)
        };
        let class = match h % 10 {
            0 => PriorityClass::Urgent,
            1 | 2 => PriorityClass::Batch,
            _ => PriorityClass::Normal,
        };
        let walltime = Duration::from_secs(120 + (frac(splitmix64(h)) * 1680.0) as u64);
        // exponential-ish jitter around the mean inter-arrival
        t += interarrival * (0.25 + 1.5 * frac(h));
        jobs.push(ArrivingJob {
            arrival: SimTime::from_secs(t as u64),
            request,
            class,
            walltime,
        });
    }
    jobs
}

/// Move the snapshot's clock forward without staling its samples.
fn advance(snap: &mut ClusterSnapshot, now: SimTime) {
    snap.taken_at = now;
    for n in snap.nodes.iter_mut() {
        n.sample.taken_at = now;
    }
}

struct ArmResult {
    arm: &'static str,
    arrivals: usize,
    started: usize,
    rejected: usize,
    ticks: u64,
    sched_jobs_per_sec: f64,
    wait_p50_s: f64,
    wait_p99_s: f64,
    utilization: f64,
    derives_per_tick: f64,
    makespan_s: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn finish_arm(
    arm: &'static str,
    arrivals: usize,
    started: usize,
    rejected: usize,
    ticks: u64,
    tick_wall_s: f64,
    mut waits: Vec<f64>,
    busy_proc_s: f64,
    capacity: u64,
    t0: SimTime,
    t_end: SimTime,
    derives: u64,
) -> ArmResult {
    waits.sort_by(f64::total_cmp);
    let makespan_s = t_end.since(t0).as_secs_f64().max(1.0);
    ArmResult {
        arm,
        arrivals,
        started,
        rejected,
        ticks,
        sched_jobs_per_sec: started as f64 / tick_wall_s.max(1e-9),
        wait_p50_s: percentile(&waits, 0.50),
        wait_p99_s: percentile(&waits, 0.99),
        utilization: busy_proc_s / (capacity as f64 * makespan_s),
        derives_per_tick: derives as f64 / ticks.max(1) as f64,
        makespan_s,
    }
}

/// Replay a stream through the batched network-and-load-aware broker.
fn run_batched(
    arm: &'static str,
    stream: &[ArrivingJob],
    admission: AdmissionPolicy,
    seed: u64,
) -> ArmResult {
    let mut cluster = iitk_cluster(seed);
    let mut rt = MonitorRuntime::new(&cluster);
    let mut snap = rt
        .warm_snapshot(&mut cluster, Duration::from_secs(360))
        .expect("warm snapshot");
    let t0 = snap.taken_at;
    let capacity = effective_capacity(&snap);

    let obs = Obs::new();
    obs.journal.set_min_severity(nlrm_obs::Severity::Error); // counters, not events
    let _g = install(&obs);

    let mut broker = Broker::new(BrokerConfig {
        max_load_per_core: None, // synthetic load profile; §6 advisor off
        admission,
        ..BrokerConfig::default()
    });

    // completion heap keyed by virtual end time
    let mut completions: BinaryHeap<std::cmp::Reverse<(SimTime, JobId)>> = BinaryHeap::new();
    let mut meta: HashMap<JobId, usize> = HashMap::new();
    let mut waits = Vec::new();
    let mut busy_proc_s = 0.0f64;
    let (mut started, mut rejected, mut ticks) = (0usize, 0usize, 0u64);
    let mut tick_wall = 0.0f64;
    let mut next = 0usize;
    let mut t_end = t0;

    let mut now = t0;
    loop {
        // completions due this quantum
        while let Some(&std::cmp::Reverse((end, id))) = completions.peek() {
            if end > now {
                break;
            }
            completions.pop();
            broker.complete_at(id, end);
            t_end = t_end.max(end);
        }
        // arrivals due
        while next < stream.len() && t0 + (stream[next].arrival - SimTime::ZERO) <= now {
            let j = &stream[next];
            let outcome = broker.submit_opts(
                format!("job-{next}"),
                j.request.clone(),
                SubmitOptions {
                    class: j.class,
                    walltime: Some(j.walltime),
                    submitted_at: Some(now),
                },
            );
            match outcome {
                Ok(id) => {
                    meta.insert(id, next);
                }
                Err(AllocError::QueueFull { .. }) => rejected += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            next += 1;
        }
        // schedule
        advance(&mut snap, now);
        let w0 = Instant::now();
        let events = broker.tick(&snap);
        tick_wall += w0.elapsed().as_secs_f64();
        ticks += 1;
        for ev in events {
            if let BrokerEvent::Started(lease) = ev {
                let idx = meta[&lease.id];
                let j = &stream[idx];
                started += 1;
                waits.push(now.since(t0 + (j.arrival - SimTime::ZERO)).as_secs_f64());
                busy_proc_s += j.request.procs as f64 * j.walltime.as_secs_f64();
                completions.push(std::cmp::Reverse((now + j.walltime, lease.id)));
            }
        }
        if next >= stream.len() && broker.queued().is_empty() && completions.is_empty() {
            break;
        }
        now = now + Duration::from_secs(QUANTUM_S);
        assert!(
            now.since(t0).as_secs_f64() < 400.0 * 24.0 * 3600.0,
            "{arm}: stream did not drain within a virtual year"
        );
    }
    let derives = obs.metrics.counter_value("loads_derive_total");
    finish_arm(
        arm,
        stream.len(),
        started,
        rejected,
        ticks,
        tick_wall,
        waits,
        busy_proc_s,
        capacity,
        t0,
        t_end,
        derives,
    )
}

/// Replay a stream through a Slurm-shaped baseline: strict FIFO, head-only
/// (no backfill), first-fit over ascending node ids, no load awareness.
fn run_slurm_baseline(arm: &'static str, stream: &[ArrivingJob], seed: u64) -> ArmResult {
    let mut cluster = iitk_cluster(seed);
    let mut rt = MonitorRuntime::new(&cluster);
    let snap = rt
        .warm_snapshot(&mut cluster, Duration::from_secs(360))
        .expect("warm snapshot");
    let t0 = snap.taken_at;
    let capacity = effective_capacity(&snap);
    let ppn = 4u32;
    let n_nodes = snap.nodes.len();

    let mut reserved = vec![0u32; n_nodes];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    let mut completions: BinaryHeap<std::cmp::Reverse<(SimTime, usize, Vec<(usize, u32)>)>> =
        BinaryHeap::new();
    let mut waits = Vec::new();
    let mut busy_proc_s = 0.0f64;
    let (mut started, mut ticks) = (0usize, 0u64);
    let mut tick_wall = 0.0f64;
    let mut next = 0usize;
    let mut t_end = t0;

    let mut now = t0;
    loop {
        while let Some(std::cmp::Reverse((end, _, _))) = completions.peek() {
            if *end > now {
                break;
            }
            let std::cmp::Reverse((end, _, nodes)) = completions.pop().unwrap();
            for (node, procs) in nodes {
                reserved[node] -= procs;
            }
            t_end = t_end.max(end);
        }
        while next < stream.len() && t0 + (stream[next].arrival - SimTime::ZERO) <= now {
            queue.push_back(next);
            next += 1;
        }
        let w0 = Instant::now();
        // strict FIFO: stop at the first job that does not fit
        while let Some(&idx) = queue.front() {
            let j = &stream[idx];
            let mut remaining = j.request.procs;
            let mut picked: Vec<(usize, u32)> = Vec::new();
            for (node, r) in reserved.iter().enumerate() {
                if remaining == 0 {
                    break;
                }
                let free = ppn.saturating_sub(*r);
                if free > 0 {
                    let take = free.min(remaining);
                    picked.push((node, take));
                    remaining -= take;
                }
            }
            if remaining > 0 {
                break;
            }
            queue.pop_front();
            for &(node, procs) in &picked {
                reserved[node] += procs;
            }
            started += 1;
            waits.push(now.since(t0 + (j.arrival - SimTime::ZERO)).as_secs_f64());
            busy_proc_s += j.request.procs as f64 * j.walltime.as_secs_f64();
            completions.push(std::cmp::Reverse((now + j.walltime, idx, picked)));
        }
        tick_wall += w0.elapsed().as_secs_f64();
        ticks += 1;
        if next >= stream.len() && queue.is_empty() && completions.is_empty() {
            break;
        }
        now = now + Duration::from_secs(QUANTUM_S);
        assert!(
            now.since(t0).as_secs_f64() < 400.0 * 24.0 * 3600.0,
            "{arm}: stream did not drain within a virtual year"
        );
    }
    finish_arm(
        arm,
        stream.len(),
        started,
        0,
        ticks,
        tick_wall,
        waits,
        busy_proc_s,
        capacity,
        t0,
        t_end,
        0,
    )
}

/// Effective process capacity of the warmed cluster under the paper's
/// default weights — the denominator every arm's utilization shares, and
/// the basis for sizing arrival streams.
fn effective_capacity(snap: &ClusterSnapshot) -> u64 {
    let shape = AllocationRequest::minimd(8);
    Loads::derive(
        snap,
        &shape.compute_weights,
        &shape.network_weights,
        shape.ppn,
    )
    .expect("warm snapshot derives")
    .total_capacity()
}

fn main() {
    let quick = std::env::var("NLRM_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let seed = 0xB20C0DE;
    let (nla_sizes, slurm_size, overload_size): (&[usize], usize, usize) = if quick {
        (&[300], 300, 200)
    } else {
        (&[10_000, 100_000], 10_000, 10_000)
    };

    // capacity for stream sizing (same warm procedure every arm repeats)
    let mut cluster = iitk_cluster(seed);
    let mut rt = MonitorRuntime::new(&cluster);
    let snap = rt
        .warm_snapshot(&mut cluster, Duration::from_secs(360))
        .expect("warm snapshot");
    let capacity = effective_capacity(&snap);
    drop(snap);

    let mut results = Vec::new();
    for &n in nla_sizes {
        if !nlrm_obs::progress::quiet() {
            println!("broker_sweep: nla-batched, {n} arrivals…");
        }
        let stream = make_stream(n, capacity, 0.9, seed);
        results.push(run_batched(
            "nla-batched",
            &stream,
            AdmissionPolicy::Unbounded,
            seed,
        ));
    }
    {
        if !nlrm_obs::progress::quiet() {
            println!("broker_sweep: slurm-baseline, {slurm_size} arrivals…");
        }
        let stream = make_stream(slurm_size, capacity, 0.9, seed);
        results.push(run_slurm_baseline("slurm-baseline", &stream, seed));
    }
    {
        if !nlrm_obs::progress::quiet() {
            println!("broker_sweep: overload-reject, {overload_size} arrivals…");
        }
        let stream = make_stream(overload_size, capacity, 2.0, seed);
        results.push(run_batched(
            "overload-reject",
            &stream,
            AdmissionPolicy::Reject { max_queue: 50 },
            seed,
        ));
    }

    let mut table = Table::new(&[
        "arm",
        "arrivals",
        "started",
        "rejected",
        "jobs/sec",
        "wait_p50_s",
        "wait_p99_s",
        "util",
        "derives/tick",
    ]);
    for r in &results {
        table.row(&[
            r.arm.to_string(),
            r.arrivals.to_string(),
            r.started.to_string(),
            r.rejected.to_string(),
            format!("{:.1}", r.sched_jobs_per_sec),
            format!("{:.1}", r.wait_p50_s),
            format!("{:.1}", r.wait_p99_s),
            format!("{:.3}", r.utilization),
            format!("{:.3}", r.derives_per_tick),
        ]);
    }
    report::write_result("broker_sweep.md", &table.to_markdown()).expect("write md");
    report::write_result("broker_sweep.csv", &table.to_csv()).expect("write csv");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"broker_sweep\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"quantum_s\": {QUANTUM_S},");
    let _ = writeln!(json, "  \"capacity_procs\": {capacity},");
    let _ = writeln!(json, "  \"arms\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"arm\": \"{}\", \"arrivals\": {}, \"started\": {}, \
             \"rejected\": {}, \"ticks\": {}, \"sched_jobs_per_sec\": {:.3}, \
             \"wait_p50_s\": {:.3}, \"wait_p99_s\": {:.3}, \"utilization\": {:.4}, \
             \"derives_per_tick\": {:.4}, \"makespan_s\": {:.1}}}{comma}",
            r.arm,
            r.arrivals,
            r.started,
            r.rejected,
            r.ticks,
            r.sched_jobs_per_sec,
            r.wait_p50_s,
            r.wait_p99_s,
            r.utilization,
            r.derives_per_tick,
            r.makespan_s
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    nlrm_obs::json::validate(&json).expect("BENCH_broker.json is valid JSON");

    // BENCH_*.json at the repository root are the committed perf
    // trajectory — only full runs belong there; quick (CI smoke) runs
    // land next to the other generated results instead
    let out = if quick {
        report::results_dir().join("BENCH_broker.json")
    } else {
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("workspace root exists")
            .join("BENCH_broker.json")
    };
    std::fs::write(&out, &json).expect("write BENCH_broker.json");
    if !nlrm_obs::progress::quiet() {
        println!("wrote {}", out.display());
        print!("{}", table.to_markdown());
    }

    // self-asserted gates: the committed numbers must tell a sane story
    let nla = results.iter().find(|r| r.arm == "nla-batched").unwrap();
    assert_eq!(nla.started, nla.arrivals, "every admitted job must run");
    assert!(nla.sched_jobs_per_sec > 0.0);
    assert!(
        nla.utilization > 0.3,
        "nla-batched utilization {:.3} too low for a 90% offered load",
        nla.utilization
    );
    assert!(
        nla.derives_per_tick < 2.0,
        "batched cycle should derive ~once per tick, got {:.3}",
        nla.derives_per_tick
    );
    let over = results.iter().find(|r| r.arm == "overload-reject").unwrap();
    assert!(
        over.rejected > 0,
        "2x offered load with a bounded queue must shed work"
    );
}
