//! # nlrm-bench
//!
//! The experiment harness: everything needed to regenerate every table and
//! figure of the paper's evaluation (§5), plus ablations.
//!
//! * [`runner`] — the trial protocol: warm a monitored cluster, snapshot it,
//!   then run each allocation policy against a **clone** of the same cluster
//!   so every policy faces an identical future (the simulation-exact version
//!   of the paper's "ran all four approaches in sequence, repeated 5
//!   times").
//! * [`gains`] — Tables 2–3 arithmetic: percentage gains (average, median,
//!   maximum) of the network-and-load-aware policy over each baseline, and
//!   per-policy coefficients of variation.
//! * [`heatmap`] — ASCII renderings of the P2P bandwidth heatmaps
//!   (Fig. 2a, Fig. 7); [`plot`] — dependency-free SVG line charts and
//!   heatmaps so the binaries emit actual figures.
//! * [`report`] — Markdown/CSV table writers; experiment binaries write
//!   their outputs under `results/`.
//!
//! One binary per experiment lives in `src/bin/` — see DESIGN.md's
//! experiment index for the mapping to paper figures/tables.

pub mod gains;
pub mod heatmap;
pub mod obs_scenario;
pub mod plot;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod trace_scenario;

pub use gains::{GainTable, PolicyStats};
pub use runner::{Experiment, TrialResult};
