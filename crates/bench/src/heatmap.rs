//! ASCII heatmaps for the bandwidth figures (Fig. 2a, Fig. 7).

use nlrm_monitor::SymMatrix;
use nlrm_topology::NodeId;

/// Shade ramp from light (low value) to dark (high value).
const RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render a symmetric matrix as an ASCII heatmap. `labels` supplies row
/// headings (typically hostnames); values are min-max scaled over finite
/// entries. Higher value → darker glyph, matching the paper's convention of
/// darker = more *complement* bandwidth (i.e. less available).
pub fn render(matrix: &SymMatrix<f64>, labels: &[String]) -> String {
    let n = matrix.len();
    assert_eq!(labels.len(), n, "one label per row required");
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, _, v) in matrix.pairs() {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        lo = 0.0;
        hi = 1.0;
    }
    let span = (hi - lo).max(f64::EPSILON);
    let width = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (u, label) in labels.iter().enumerate() {
        out.push_str(&format!("{label:>width$} |"));
        for v in 0..n {
            if u == v {
                out.push('\\');
                continue;
            }
            let val = matrix.get(NodeId(u as u32), NodeId(v as u32));
            let idx = if val.is_finite() {
                (((val - lo) / span) * (RAMP.len() - 1) as f64).round() as usize
            } else {
                RAMP.len() - 1
            };
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>width$}  scale: '{}' = {:.3e} … '{}' = {:.3e}\n",
        "",
        RAMP[0],
        lo,
        RAMP[RAMP.len() - 1],
        hi
    ));
    out
}

/// Render a one-line membership strip (Fig. 7's middle band): a `#` where
/// the node is selected, `.` where it is not.
pub fn selection_strip(n: usize, selected: &[NodeId]) -> String {
    (0..n)
        .map(|i| {
            if selected.iter().any(|s| s.index() == i) {
                '#'
            } else {
                '.'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("n{i}")).collect()
    }

    #[test]
    fn render_shape() {
        let mut m = SymMatrix::new(3, 0.0);
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(0), NodeId(2), 5.0);
        m.set(NodeId(1), NodeId(2), 10.0);
        let art = render(&m, &labels(3));
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4); // 3 rows + scale
                                    // diagonal marked
        assert!(lines[0].contains('\\'));
        assert!(art.contains("scale:"));
    }

    #[test]
    fn extremes_use_ramp_ends() {
        let mut m = SymMatrix::new(3, 0.0);
        m.set(NodeId(0), NodeId(1), 0.0);
        m.set(NodeId(0), NodeId(2), 100.0);
        m.set(NodeId(1), NodeId(2), 50.0);
        let art = render(&m, &labels(3));
        assert!(art.contains('@'), "max value should be darkest");
    }

    #[test]
    fn strip_marks_selection() {
        let s = selection_strip(6, &[NodeId(1), NodeId(4)]);
        assert_eq!(s, ".#..#.");
    }

    #[test]
    fn constant_matrix_does_not_panic() {
        let m = SymMatrix::new(4, 2.0);
        let art = render(&m, &labels(4));
        assert!(!art.is_empty());
    }
}
