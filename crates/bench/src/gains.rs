//! Tables 2–3 arithmetic: percentage gains and run stability.

use nlrm_sim_core::stats::{median, percent_gain, Summary};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Execution times collected per policy across matched configurations:
/// `times["random"][k]` and `times["network-load-aware"][k]` come from the
/// same (problem size, process count, repetition) cell.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyTimes {
    times: BTreeMap<String, Vec<f64>>,
}

impl PolicyTimes {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one cell's execution time for `policy`.
    pub fn push(&mut self, policy: &str, time_s: f64) {
        self.times
            .entry(policy.to_string())
            .or_default()
            .push(time_s);
    }

    /// All recorded policies.
    pub fn policies(&self) -> Vec<String> {
        self.times.keys().cloned().collect()
    }

    /// Times for one policy.
    pub fn of(&self, policy: &str) -> &[f64] {
        self.times.get(policy).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Per-configuration percentage gains of `ours` over `baseline`
    /// (`(baseline − ours)/baseline·100`, positive = ours faster).
    pub fn gains_over(&self, baseline: &str, ours: &str) -> Vec<f64> {
        let b = self.of(baseline);
        let o = self.of(ours);
        assert_eq!(
            b.len(),
            o.len(),
            "mismatched cells between {baseline} and {ours}"
        );
        b.iter()
            .zip(o)
            .map(|(&bt, &ot)| percent_gain(bt, ot))
            .collect()
    }

    /// The paper's coefficient-of-variation stability metric for a policy.
    pub fn cov(&self, policy: &str) -> f64 {
        Summary::of(self.of(policy)).map(|s| s.cov()).unwrap_or(0.0)
    }
}

/// One row of Table 2/3: gains of the NLA policy over a baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GainRow {
    /// Baseline policy name.
    pub baseline: String,
    /// Average gain, %.
    pub average: f64,
    /// Median gain, %.
    pub median: f64,
    /// Maximum gain, %.
    pub maximum: f64,
}

/// A full gains table (the paper's Tables 2 and 3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GainTable {
    /// Rows, one per baseline.
    pub rows: Vec<GainRow>,
}

impl GainTable {
    /// Build the table: NLA (`ours`) versus every other recorded policy.
    pub fn build(times: &PolicyTimes, ours: &str) -> GainTable {
        let rows = times
            .policies()
            .into_iter()
            .filter(|p| p != ours)
            .map(|baseline| {
                let gains = times.gains_over(&baseline, ours);
                GainRow {
                    average: gains.iter().sum::<f64>() / gains.len() as f64,
                    median: median(&gains),
                    maximum: gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    baseline,
                }
            })
            .collect();
        GainTable { rows }
    }

    /// Render in the paper's format.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from(
            "| Allocation Policy | Average Gain | Median Gain | Maximum Gain |\n|---|---|---|---|\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {:.1}% | {:.1}% | {:.1}% |\n",
                r.baseline, r.average, r.median, r.maximum
            ));
        }
        out
    }
}

/// Per-policy summary statistics for a sweep (CoV column of §5, Fig. 5
/// companion numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyStats {
    /// Policy name.
    pub policy: String,
    /// Mean execution time over all cells.
    pub mean_time_s: f64,
    /// Coefficient of variation of execution times.
    pub cov: f64,
    /// Mean CPU load per logical core during execution (Fig. 5).
    pub mean_load_per_core: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PolicyTimes {
        let mut t = PolicyTimes::new();
        for (r, s, n) in [(10.0, 8.0, 5.0), (20.0, 18.0, 10.0), (30.0, 24.0, 15.0)] {
            t.push("random", r);
            t.push("sequential", s);
            t.push("network-load-aware", n);
        }
        t
    }

    #[test]
    fn gains_match_hand_computation() {
        let t = sample();
        let g = t.gains_over("random", "network-load-aware");
        assert_eq!(g, vec![50.0, 50.0, 50.0]);
        let g2 = t.gains_over("sequential", "network-load-aware");
        assert!((g2[0] - 37.5).abs() < 1e-12);
    }

    #[test]
    fn table_contains_all_baselines() {
        let t = sample();
        let table = GainTable::build(&t, "network-load-aware");
        assert_eq!(table.rows.len(), 2);
        let random_row = table.rows.iter().find(|r| r.baseline == "random").unwrap();
        assert!((random_row.average - 50.0).abs() < 1e-12);
        assert!((random_row.maximum - 50.0).abs() < 1e-12);
    }

    #[test]
    fn markdown_has_paper_columns() {
        let md = GainTable::build(&sample(), "network-load-aware").to_markdown();
        assert!(md.contains("Average Gain"));
        assert!(md.contains("| random | 50.0%"));
    }

    #[test]
    fn cov_zero_for_constant_times() {
        let mut t = PolicyTimes::new();
        t.push("x", 5.0);
        t.push("x", 5.0);
        assert_eq!(t.cov("x"), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_cells_panic() {
        let mut t = sample();
        t.push("random", 99.0);
        t.gains_over("random", "network-load-aware");
    }
}
