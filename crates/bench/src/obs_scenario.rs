//! The faulted broker scenario behind the `obs_report` binary and the
//! observability integration test.
//!
//! One deterministic storyline exercises every event the journal knows
//! about: daemons die and get relaunched, the master central monitor dies
//! and fails over, then the whole supervision plane goes headless so two
//! node-state daemons stay dead and their samples age into staleness.
//! A broker schedules jobs through that degradation, so granted
//! allocations carry explain traces shaped by the stale exclusions.

use nlrm_cluster::iitk::small_cluster;
use nlrm_core::broker::{Broker, BrokerConfig, BrokerEvent, SchedMode};
use nlrm_core::AllocationRequest;
use nlrm_monitor::{DaemonKind, FaultTarget, MonitorFaultPlan};
use nlrm_obs::{install, ExplainTrace, Obs, Severity, TelemetryConfig, TraceId};
use nlrm_sim_core::fault::FaultAction;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::collections::BTreeMap;

use crate::runner::Experiment;

/// Knobs for [`run_broker_scenario`]. The original fully-faulted shape
/// lives on as [`run_faulted_broker_scenario`]; the health report runs
/// the same storyline twice — faulted and clean — with telemetry on,
/// and compares what the detectors say about each arm.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOptions {
    /// Install the fault storyline (daemon kills, failover, headless
    /// supervision plane, stale samples).
    pub faulted: bool,
    /// Submit the never-placeable 64-process job up front. The clean
    /// arm leaves it out so a permanently starving job cannot trip the
    /// starvation detector on a run that is supposed to be healthy.
    pub submit_huge: bool,
    /// Enable the continuous-telemetry loop (standard config: 30 s
    /// virtual cadence, health + SLOs + anomaly detectors + sampler).
    pub telemetry: bool,
}

impl ScenarioOptions {
    /// The classic observability-report shape: all faults, the
    /// starving job, no telemetry loop.
    pub fn faulted() -> Self {
        ScenarioOptions {
            faulted: true,
            submit_huge: true,
            telemetry: false,
        }
    }

    /// A fault-free control arm with telemetry enabled.
    pub fn clean_telemetry() -> Self {
        ScenarioOptions {
            faulted: false,
            submit_huge: false,
            telemetry: true,
        }
    }

    /// The faulted arm with telemetry enabled.
    pub fn faulted_telemetry() -> Self {
        ScenarioOptions {
            telemetry: true,
            ..Self::faulted()
        }
    }
}

/// One granted allocation with its decision context.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Job display name.
    pub job: String,
    /// The job's trace id: every journal line and span recorded on the
    /// job's behalf carries it, so a timeline can be grepped per job.
    pub trace: TraceId,
    /// Virtual time the broker granted it.
    pub granted_at: SimTime,
    /// The nodes actually placed on.
    pub nodes: Vec<NodeId>,
    /// Eq. 4 cost of the winning group.
    pub cost: f64,
    /// The ranking that produced the grant.
    pub explain: ExplainTrace,
}

/// Everything the scenario produced.
#[derive(Debug, Clone)]
pub struct ObsScenarioResult {
    /// Journal + metrics captured during the run.
    pub obs: Obs,
    /// Granted allocations in grant order.
    pub decisions: Vec<Decision>,
    /// `(job, reason)` per deferral, in occurrence order.
    pub deferred: Vec<(String, String)>,
    /// Relaunches counted by the central monitor itself (ground truth for
    /// cross-checking the journal).
    pub relaunches: usize,
    /// Failovers counted by the central monitor itself.
    pub failovers: usize,
}

/// Virtual-second checkpoints for the full run.
pub const FULL_CHECKPOINTS: &[u64] = &[1100, 1300, 1500];
/// Checkpoints for `NLRM_QUICK` / CI smoke runs.
pub const QUICK_CHECKPOINTS: &[u64] = &[1100, 1300];

/// Run the faulted broker scenario and capture its observability output.
///
/// The fault storyline, all in virtual seconds on an 8-node cluster
/// warmed to t=360:
///
/// | t   | fault                         | expected journal reaction        |
/// |-----|-------------------------------|----------------------------------|
/// | 400 | bandwidth daemon killed       | `daemon_relaunched`              |
/// | 450 | node-state daemon on n3 killed| `daemon_relaunched`              |
/// | 700 | master killed                 | `failover` + fresh `slave_spawned` |
/// | 900 | master *and* slave killed     | supervision plane goes headless  |
/// | 950 | node-state daemons n5, n6 killed | never relaunched → `stale_node_excluded` once their samples age past the 60 s bound |
///
/// At each checkpoint the broker completes the previously running job,
/// submits a fresh 16-process job, and reschedules; an oversized
/// 64-process job submitted up front stays queued forever, producing an
/// `alloc_deferred` at every pass.
/// The shared fault storyline (see the table above), also reused by the
/// traced scenario behind `trace_report`.
pub fn fault_storyline() -> MonitorFaultPlan {
    let mut plan = MonitorFaultPlan::new();
    let kill = FaultAction::Kill;
    plan.schedule(
        SimTime::from_secs(400),
        FaultTarget::Daemon(DaemonKind::Bandwidth),
        kill,
    );
    plan.schedule(
        SimTime::from_secs(450),
        FaultTarget::Daemon(DaemonKind::NodeState(NodeId(3))),
        kill,
    );
    plan.schedule(SimTime::from_secs(700), FaultTarget::Master, kill);
    plan.schedule(SimTime::from_secs(900), FaultTarget::Master, kill);
    plan.schedule(SimTime::from_secs(900), FaultTarget::Slave, kill);
    for node in [NodeId(5), NodeId(6)] {
        plan.schedule(
            SimTime::from_secs(950),
            FaultTarget::Daemon(DaemonKind::NodeState(node)),
            kill,
        );
    }
    plan
}

pub fn run_faulted_broker_scenario(seed: u64, checkpoints: &[u64]) -> ObsScenarioResult {
    run_broker_scenario(seed, checkpoints, ScenarioOptions::faulted())
}

/// Run the broker scenario with explicit [`ScenarioOptions`] and capture
/// its observability output. See [`run_faulted_broker_scenario`] for the
/// fault storyline; a clean arm runs the same checkpoints without it.
pub fn run_broker_scenario(
    seed: u64,
    checkpoints: &[u64],
    opts: ScenarioOptions,
) -> ObsScenarioResult {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    let obs = Obs::with_capacity(16 * 1024);
    // Debug-level ticks and publishes would dominate the ring over a
    // 1500 s run; the report keeps the decision-relevant layer.
    obs.journal.set_min_severity(Severity::Info);
    if opts.telemetry {
        obs.telemetry.enable(TelemetryConfig::standard());
    }
    let guard = install(&obs);

    let mut env = Experiment::new(small_cluster(8, seed));
    env.advance(Duration::from_secs(360));
    if opts.faulted {
        env.monitor.set_fault_plan(fault_storyline());
    }

    let mut broker = Broker::new(BrokerConfig {
        backfill: true,
        max_load_per_core: None,
        mode: SchedMode::PerJob,
        ..BrokerConfig::default()
    });
    let mut names: BTreeMap<nlrm_core::broker::JobId, String> = BTreeMap::new();
    if opts.submit_huge {
        let huge = broker
            .submit_at("huge-64", AllocationRequest::minimd(64), env.cluster.now())
            .expect("valid request");
        names.insert(huge, "huge-64".to_string());
    }

    let mut decisions = Vec::new();
    let mut deferred = Vec::new();
    let mut last_started: Option<nlrm_core::broker::JobId> = None;
    for (i, &cp) in checkpoints.iter().enumerate() {
        let target = SimTime::from_secs(cp);
        env.advance(target.since(env.cluster.now()));
        let snap = env.snapshot();
        if let Some(prev) = last_started.take() {
            broker.complete(prev);
        }
        let name = format!("md16-{i}");
        let id = broker
            .submit_at(&name, AllocationRequest::minimd(16), snap.taken_at)
            .expect("valid request");
        names.insert(id, name);
        for event in broker.tick(&snap) {
            match event {
                BrokerEvent::Started(lease) => {
                    last_started = Some(lease.id);
                    decisions.push(Decision {
                        job: lease.name.clone(),
                        trace: lease.trace,
                        granted_at: snap.taken_at,
                        nodes: lease.allocation.node_list(),
                        cost: lease.allocation.diagnostics.total_cost,
                        explain: lease
                            .allocation
                            .diagnostics
                            .explain
                            .clone()
                            .expect("broker grants carry explain traces"),
                    });
                }
                BrokerEvent::Deferred { id, reason } => {
                    let job = names.get(&id).cloned().unwrap_or_else(|| format!("{id:?}"));
                    deferred.push((job, reason));
                }
            }
        }
    }

    let relaunches = env.monitor.central().relaunch_count;
    let failovers = env.monitor.central().failover_count;
    drop(guard);
    ObsScenarioResult {
        obs,
        decisions,
        deferred,
        relaunches,
        failovers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_grants_and_defers() {
        let r = run_faulted_broker_scenario(7, QUICK_CHECKPOINTS);
        assert_eq!(r.decisions.len(), QUICK_CHECKPOINTS.len());
        assert!(!r.deferred.is_empty(), "oversized job never deferred");
        assert!(r.failovers >= 1, "master kill at t=700 must fail over");
        assert!(r.relaunches >= 2, "daemon kills at t=400/450 must relaunch");
    }
}
