//! The faulted broker scenario behind the `obs_report` binary and the
//! observability integration test.
//!
//! One deterministic storyline exercises every event the journal knows
//! about: daemons die and get relaunched, the master central monitor dies
//! and fails over, then the whole supervision plane goes headless so two
//! node-state daemons stay dead and their samples age into staleness.
//! A broker schedules jobs through that degradation, so granted
//! allocations carry explain traces shaped by the stale exclusions.
//!
//! The machinery itself — observer install, warm-up, fault plan, broker,
//! checkpoint loop — lives in [`crate::scenario`]; this module keeps the
//! classic option set and result shape the reports were written against.

use crate::scenario::{self, ScenarioSpec};
pub use crate::scenario::{standard_fault_storyline as fault_storyline, Decision};
use nlrm_obs::Obs;

/// Knobs for [`run_broker_scenario`]. The original fully-faulted shape
/// lives on as [`run_faulted_broker_scenario`]; the health report runs
/// the same storyline twice — faulted and clean — with telemetry on,
/// and compares what the detectors say about each arm.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOptions {
    /// Install the fault storyline (daemon kills, failover, headless
    /// supervision plane, stale samples).
    pub faulted: bool,
    /// Submit the never-placeable 64-process job up front. The clean
    /// arm leaves it out so a permanently starving job cannot trip the
    /// starvation detector on a run that is supposed to be healthy.
    pub submit_huge: bool,
    /// Enable the continuous-telemetry loop (standard config: 30 s
    /// virtual cadence, health + SLOs + anomaly detectors + sampler).
    pub telemetry: bool,
}

impl ScenarioOptions {
    /// The classic observability-report shape: all faults, the
    /// starving job, no telemetry loop.
    pub fn faulted() -> Self {
        ScenarioOptions {
            faulted: true,
            submit_huge: true,
            telemetry: false,
        }
    }

    /// A fault-free control arm with telemetry enabled.
    pub fn clean_telemetry() -> Self {
        ScenarioOptions {
            faulted: false,
            submit_huge: false,
            telemetry: true,
        }
    }

    /// The faulted arm with telemetry enabled.
    pub fn faulted_telemetry() -> Self {
        ScenarioOptions {
            telemetry: true,
            ..Self::faulted()
        }
    }
}

/// Everything the scenario produced.
#[derive(Debug, Clone)]
pub struct ObsScenarioResult {
    /// Journal + metrics captured during the run.
    pub obs: Obs,
    /// Granted allocations in grant order.
    pub decisions: Vec<Decision>,
    /// `(job, reason)` per deferral, in occurrence order.
    pub deferred: Vec<(String, String)>,
    /// Relaunches counted by the central monitor itself (ground truth for
    /// cross-checking the journal).
    pub relaunches: usize,
    /// Failovers counted by the central monitor itself.
    pub failovers: usize,
}

/// Virtual-second checkpoints for the full run.
pub const FULL_CHECKPOINTS: &[u64] = &[1100, 1300, 1500];
/// Checkpoints for `NLRM_QUICK` / CI smoke runs.
pub const QUICK_CHECKPOINTS: &[u64] = &[1100, 1300];

/// Run the faulted broker scenario and capture its observability output.
///
/// The fault storyline, all in virtual seconds on an 8-node cluster
/// warmed to t=360:
///
/// | t   | fault                         | expected journal reaction        |
/// |-----|-------------------------------|----------------------------------|
/// | 400 | bandwidth daemon killed       | `daemon_relaunched`              |
/// | 450 | node-state daemon on n3 killed| `daemon_relaunched`              |
/// | 700 | master killed                 | `failover` + fresh `slave_spawned` |
/// | 900 | master *and* slave killed     | supervision plane goes headless  |
/// | 950 | node-state daemons n5, n6 killed | never relaunched → `stale_node_excluded` once their samples age past the 60 s bound |
///
/// At each checkpoint the broker completes the previously running job,
/// submits a fresh 16-process job, and reschedules; an oversized
/// 64-process job submitted up front stays queued forever, producing an
/// `alloc_deferred` at every pass.
pub fn run_faulted_broker_scenario(seed: u64, checkpoints: &[u64]) -> ObsScenarioResult {
    run_broker_scenario(seed, checkpoints, ScenarioOptions::faulted())
}

/// Run the broker scenario with explicit [`ScenarioOptions`] and capture
/// its observability output. See [`run_faulted_broker_scenario`] for the
/// fault storyline; a clean arm runs the same checkpoints without it.
pub fn run_broker_scenario(
    seed: u64,
    checkpoints: &[u64],
    opts: ScenarioOptions,
) -> ObsScenarioResult {
    let mut spec = ScenarioSpec::new("obs-report", seed, checkpoints);
    spec.faulted = opts.faulted;
    spec.submit_huge = opts.submit_huge;
    spec.telemetry = opts.telemetry;
    let run = scenario::run(&spec.standard_arrivals(16));
    ObsScenarioResult {
        obs: run.obs,
        decisions: run.decisions,
        deferred: run.deferred,
        relaunches: run.relaunches,
        failovers: run.failovers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_grants_and_defers() {
        let r = run_faulted_broker_scenario(7, QUICK_CHECKPOINTS);
        assert_eq!(r.decisions.len(), QUICK_CHECKPOINTS.len());
        assert!(!r.deferred.is_empty(), "oversized job never deferred");
        assert!(r.failovers >= 1, "master kill at t=700 must fail over");
        assert!(r.relaunches >= 2, "daemon kills at t=400/450 must relaunch");
    }
}
