//! The shared faulted-broker scenario builder.
//!
//! Three binaries (`obs_report`, `health_report`, `trace_report`) and the
//! incident pipeline all drive the same shape: warm a monitored cluster,
//! install a fault storyline, push jobs through a broker at virtual-time
//! checkpoints, and capture the observability output. This module owns
//! that machinery once:
//!
//! - [`ScenarioSpec`] — every knob (seed, cluster size, checkpoints,
//!   fault plan, arrival schedule, telemetry/recording toggles);
//! - [`setup`] / [`ScenarioEnv`] — the common preamble (observer install,
//!   warm-up, fault plan, broker) for consumers that drive their own
//!   checkpoint loop (the traced scenario);
//! - [`run`] — the standard checkpoint loop used by the observability and
//!   incident reports;
//! - [`rerun_from`] — the replay harness: re-drive the monitor runtime,
//!   broker, and cluster simulator from a flight [`Record`], producing a
//!   second record to compare bit-for-bit with
//!   [`nlrm_obs::replay::compare`];
//! - the [`FaultTarget`]↔string codec that lets fault plans travel
//!   through the dependency-free record format.

use crate::runner::Experiment;
use nlrm_cluster::iitk::small_cluster;
use nlrm_core::broker::{Broker, BrokerConfig, BrokerEvent, JobId, SchedMode};
use nlrm_core::AllocationRequest;
use nlrm_monitor::{DaemonKind, FaultTarget, MonitorFaultPlan};
use nlrm_obs::{
    install, ExplainTrace, Obs, ObsGuard, Record, RecordHeader, Severity, TelemetryConfig, TraceId,
};
use nlrm_sim_core::fault::FaultAction;
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::collections::BTreeMap;
use std::time::Instant;

/// Virtual warm-up before the first checkpoint, in seconds. Submissions
/// made "up front" (the oversized starver) land at this instant.
pub const WARMUP_SECS: u64 = 360;

/// One scheduled job submission at a checkpoint.
#[derive(Debug, Clone)]
pub struct ArrivalSpec {
    /// Virtual second the job is submitted (must be a checkpoint, or the
    /// warm-up instant).
    pub at_secs: u64,
    /// Job display name.
    pub name: String,
    /// Requested process count (`AllocationRequest::minimd`).
    pub procs: u32,
}

/// Every knob of the shared scenario.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Human label (stamped into the flight record's header).
    pub label: String,
    /// RNG seed for the cluster simulator.
    pub seed: u64,
    /// Cluster size in nodes.
    pub nodes: usize,
    /// Scheduling-pass checkpoints, in virtual seconds, ascending.
    pub checkpoints: Vec<u64>,
    /// Install the standard fault storyline (see
    /// [`standard_fault_storyline`]).
    pub faulted: bool,
    /// Explicit fault plan; overrides `faulted` when set.
    pub fault_plan: Option<MonitorFaultPlan>,
    /// Submit the never-placeable 64-process job up front.
    pub submit_huge: bool,
    /// Enable the continuous-telemetry loop.
    pub telemetry: bool,
    /// Enable the incident flight recorder.
    pub record: bool,
    /// Mirror granted leases into node job-load (and remove them on
    /// completion), so placements shape the load signal.
    pub lease_load: bool,
    /// Complete the previously started job at each checkpoint.
    pub complete_prev: bool,
    /// Checkpoint submissions. [`ScenarioSpec::standard_arrivals`] fills
    /// one per checkpoint.
    pub arrivals: Vec<ArrivalSpec>,
    /// Journal ring capacity.
    pub journal_capacity: usize,
}

impl ScenarioSpec {
    /// A spec with the classic defaults: 8 nodes, per-checkpoint
    /// completion, no faults, no telemetry, no recording.
    pub fn new(label: impl Into<String>, seed: u64, checkpoints: &[u64]) -> Self {
        ScenarioSpec {
            label: label.into(),
            seed,
            nodes: 8,
            checkpoints: checkpoints.to_vec(),
            faulted: false,
            fault_plan: None,
            submit_huge: false,
            telemetry: false,
            record: false,
            lease_load: false,
            complete_prev: true,
            arrivals: Vec::new(),
            journal_capacity: 16 * 1024,
        }
    }

    /// One `procs`-process job per checkpoint, named `md{procs}-{i}`.
    pub fn standard_arrivals(mut self, procs: u32) -> Self {
        self.arrivals = self
            .checkpoints
            .iter()
            .enumerate()
            .map(|(i, &cp)| ArrivalSpec {
                at_secs: cp,
                name: format!("md{procs}-{i}"),
                procs,
            })
            .collect();
        self
    }

    /// The record header describing this spec.
    pub fn header(&self) -> RecordHeader {
        RecordHeader {
            label: self.label.clone(),
            seed: self.seed,
            nodes: self.nodes,
            checkpoints: self.checkpoints.clone(),
            faulted: self.faulted || self.fault_plan.is_some(),
            submit_huge: self.submit_huge,
            telemetry: self.telemetry,
            lease_load: self.lease_load,
            complete_prev: self.complete_prev,
        }
    }

    /// The fault plan this spec installs, if any.
    fn plan(&self) -> Option<MonitorFaultPlan> {
        match &self.fault_plan {
            Some(p) => Some(p.clone()),
            None if self.faulted => Some(standard_fault_storyline()),
            None => None,
        }
    }
}

/// The shared fault storyline, in virtual seconds on an 8-node cluster:
/// daemon kills at t=400/450, a master failover at t=700, a headless
/// supervision plane at t=900, and two node-state daemons killed at t=950
/// whose samples age into staleness.
pub fn standard_fault_storyline() -> MonitorFaultPlan {
    let mut plan = MonitorFaultPlan::new();
    let kill = FaultAction::Kill;
    plan.schedule(
        SimTime::from_secs(400),
        FaultTarget::Daemon(DaemonKind::Bandwidth),
        kill,
    );
    plan.schedule(
        SimTime::from_secs(450),
        FaultTarget::Daemon(DaemonKind::NodeState(NodeId(3))),
        kill,
    );
    plan.schedule(SimTime::from_secs(700), FaultTarget::Master, kill);
    plan.schedule(SimTime::from_secs(900), FaultTarget::Master, kill);
    plan.schedule(SimTime::from_secs(900), FaultTarget::Slave, kill);
    for node in [NodeId(5), NodeId(6)] {
        plan.schedule(
            SimTime::from_secs(950),
            FaultTarget::Daemon(DaemonKind::NodeState(node)),
            kill,
        );
    }
    plan
}

/// Encode a fault target as the record codec string.
pub fn encode_fault_target(t: &FaultTarget) -> String {
    match t {
        FaultTarget::Daemon(DaemonKind::Livehosts) => "daemon:livehosts".into(),
        FaultTarget::Daemon(DaemonKind::NodeState(n)) => format!("daemon:nodestate:{}", n.index()),
        FaultTarget::Daemon(DaemonKind::Latency) => "daemon:latency".into(),
        FaultTarget::Daemon(DaemonKind::Bandwidth) => "daemon:bandwidth".into(),
        FaultTarget::Node(n) => format!("node:{}", n.index()),
        FaultTarget::Master => "master".into(),
        FaultTarget::Slave => "slave".into(),
    }
}

/// Decode a fault target from the record codec string.
pub fn decode_fault_target(s: &str) -> Option<FaultTarget> {
    match s {
        "daemon:livehosts" => Some(FaultTarget::Daemon(DaemonKind::Livehosts)),
        "daemon:latency" => Some(FaultTarget::Daemon(DaemonKind::Latency)),
        "daemon:bandwidth" => Some(FaultTarget::Daemon(DaemonKind::Bandwidth)),
        "master" => Some(FaultTarget::Master),
        "slave" => Some(FaultTarget::Slave),
        _ => {
            if let Some(idx) = s.strip_prefix("daemon:nodestate:") {
                return Some(FaultTarget::Daemon(DaemonKind::NodeState(NodeId(
                    idx.parse().ok()?,
                ))));
            }
            if let Some(idx) = s.strip_prefix("node:") {
                return Some(FaultTarget::Node(NodeId(idx.parse().ok()?)));
            }
            None
        }
    }
}

/// Encode a fault action as the record codec string.
pub fn encode_fault_action(a: &FaultAction) -> String {
    match a {
        FaultAction::Kill => "kill".into(),
        FaultAction::Hang(d) => format!("hang:{}", d.as_micros()),
        FaultAction::Delay(d) => format!("delay:{}", d.as_micros()),
    }
}

/// Decode a fault action from the record codec string.
pub fn decode_fault_action(s: &str) -> Option<FaultAction> {
    if s == "kill" {
        return Some(FaultAction::Kill);
    }
    if let Some(us) = s.strip_prefix("hang:") {
        return Some(FaultAction::Hang(Duration::from_micros(us.parse().ok()?)));
    }
    if let Some(us) = s.strip_prefix("delay:") {
        return Some(FaultAction::Delay(Duration::from_micros(us.parse().ok()?)));
    }
    None
}

/// One granted allocation with its decision context.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Job display name.
    pub job: String,
    /// The job's trace id: every journal line and span recorded on the
    /// job's behalf carries it, so a timeline can be grepped per job.
    pub trace: TraceId,
    /// Virtual time the broker granted it.
    pub granted_at: SimTime,
    /// The nodes actually placed on.
    pub nodes: Vec<NodeId>,
    /// Eq. 4 cost of the winning group.
    pub cost: f64,
    /// The ranking that produced the grant.
    pub explain: ExplainTrace,
}

/// The common preamble, installed: observer, warmed cluster + monitor,
/// fault plan (noted into the recorder), broker, and the oversized
/// starver if requested. Consumers drive their own checkpoint loop and
/// call [`ScenarioEnv::finish`].
pub struct ScenarioEnv {
    /// The installed observer bundle.
    pub obs: Obs,
    /// Cluster + monitoring, warmed to [`WARMUP_SECS`].
    pub env: Experiment,
    /// The broker (per-job mode, backfill on, no per-core load cap).
    pub broker: Broker,
    /// Job-id → display-name map for deferral reporting.
    pub names: BTreeMap<JobId, String>,
    guard: Option<ObsGuard>,
}

impl std::fmt::Debug for ScenarioEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEnv")
            .field("now", &self.env.cluster.now())
            .field("jobs", &self.names.len())
            .finish()
    }
}

/// What [`ScenarioEnv::finish`] hands back.
#[derive(Debug)]
pub struct ScenarioFinish {
    /// The (now uninstalled) observer.
    pub obs: Obs,
    /// The finalized flight record, when recording was enabled.
    pub record: Option<Record>,
    /// Daemon relaunches counted by the central monitor itself.
    pub relaunches: usize,
    /// Failovers counted by the central monitor itself.
    pub failovers: usize,
}

/// Build the common scenario preamble from `spec`. The observer is
/// installed on the current thread until [`ScenarioEnv::finish`].
pub fn setup(spec: &ScenarioSpec) -> ScenarioEnv {
    let obs = Obs::with_capacity(spec.journal_capacity);
    // Debug-level ticks and publishes would dominate the ring over a
    // 1500 s run; reports keep the decision-relevant layer.
    obs.journal.set_min_severity(Severity::Info);
    if spec.telemetry {
        obs.telemetry.enable(TelemetryConfig::standard());
    }
    if spec.record {
        obs.recorder.enable(spec.header());
    }
    let guard = install(&obs);

    let mut env = Experiment::new(small_cluster(spec.nodes, spec.seed));
    env.advance(Duration::from_secs(WARMUP_SECS));
    if let Some(plan) = spec.plan() {
        for ev in plan.events() {
            obs.recorder.note_fault(
                ev.at,
                &encode_fault_target(&ev.target),
                &encode_fault_action(&ev.action),
            );
        }
        env.monitor.set_fault_plan(plan);
    }

    let broker = Broker::new(BrokerConfig {
        backfill: true,
        max_load_per_core: None,
        mode: SchedMode::PerJob,
        ..BrokerConfig::default()
    });
    let mut scen = ScenarioEnv {
        obs,
        env,
        broker,
        names: BTreeMap::new(),
        guard: Some(guard),
    };
    if spec.submit_huge {
        scen.submit("huge-64", 64);
    }
    scen
}

impl ScenarioEnv {
    /// Submit a `procs`-process job now, noting the arrival into the
    /// flight recorder.
    pub fn submit(&mut self, name: &str, procs: u32) -> JobId {
        let at = self.env.cluster.now();
        let id = self
            .broker
            .submit_at(name, AllocationRequest::minimd(procs), at)
            .expect("valid request");
        self.names.insert(id, name.to_string());
        self.obs.recorder.note_arrival(at, name, procs);
        id
    }

    /// Display name of a job id.
    pub fn job_name(&self, id: JobId) -> String {
        self.names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| format!("{id:?}"))
    }

    /// Uninstall the observer, finalize the flight record, and return the
    /// captured output.
    pub fn finish(mut self) -> ScenarioFinish {
        let relaunches = self.env.monitor.central().relaunch_count;
        let failovers = self.env.monitor.central().failover_count;
        drop(self.guard.take());
        let record = self.obs.recorder.finalize(&self.obs.metrics);
        ScenarioFinish {
            obs: self.obs,
            record,
            relaunches,
            failovers,
        }
    }
}

/// Everything the standard checkpoint loop produced.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Journal + metrics + spans captured during the run.
    pub obs: Obs,
    /// Granted allocations in grant order.
    pub decisions: Vec<Decision>,
    /// `(job, reason)` per deferral, in occurrence order.
    pub deferred: Vec<(String, String)>,
    /// Daemon relaunches counted by the central monitor itself.
    pub relaunches: usize,
    /// Failovers counted by the central monitor itself.
    pub failovers: usize,
    /// The finalized flight record, when recording was enabled.
    pub record: Option<Record>,
    /// Wall-clock the whole scenario took.
    pub wall_secs: f64,
}

/// Run the standard checkpoint loop: at each checkpoint, complete the
/// previously started job (when `complete_prev`), submit that
/// checkpoint's arrivals, and run one scheduling pass.
pub fn run(spec: &ScenarioSpec) -> ScenarioRun {
    let schedule: Vec<ArrivalSpec> = spec.arrivals.clone();
    drive(spec, schedule)
}

/// Re-drive the whole stack — monitor runtime, broker, cluster simulator
/// — from a flight record: same seed, same topology, same fault plan (via
/// the codec), same arrival stream. Returns a fresh [`ScenarioRun`] whose
/// `record` is compared against the original with
/// [`nlrm_obs::replay::compare`]; a deterministic stack reproduces it
/// bit-for-bit.
///
/// Panics if the record carries a fault target/action the codec does not
/// know (a corrupt or newer-version record).
pub fn rerun_from(record: &Record) -> ScenarioRun {
    let h = &record.header;
    let mut plan = MonitorFaultPlan::new();
    for f in &record.faults {
        let target = decode_fault_target(&f.target)
            .unwrap_or_else(|| panic!("undecodable fault target {:?}", f.target));
        let action = decode_fault_action(&f.action)
            .unwrap_or_else(|| panic!("undecodable fault action {:?}", f.action));
        plan.schedule(f.at, target, action);
    }
    let spec = ScenarioSpec {
        label: h.label.clone(),
        seed: h.seed,
        nodes: h.nodes,
        checkpoints: h.checkpoints.clone(),
        faulted: h.faulted,
        fault_plan: (!plan.is_empty()).then_some(plan),
        // arrivals are re-driven from the record itself below, including
        // the up-front starver, so the builder must not re-submit it
        submit_huge: false,
        telemetry: h.telemetry,
        record: true,
        lease_load: h.lease_load,
        complete_prev: h.complete_prev,
        arrivals: Vec::new(),
        journal_capacity: 16 * 1024,
    };
    let schedule: Vec<ArrivalSpec> = record
        .arrivals
        .iter()
        .map(|a| ArrivalSpec {
            at_secs: a.at.as_micros() / 1_000_000,
            name: a.name.clone(),
            procs: a.procs,
        })
        .collect();
    let mut run = drive(&spec, schedule);
    // the builder-side submit_huge flag was forced off; restore the
    // original header bit on the replay record so the comparison sees the
    // harness parameters, not the replay plumbing
    if let Some(rec) = &mut run.record {
        rec.header.submit_huge = h.submit_huge;
        rec.header.faulted = h.faulted;
    }
    run
}

/// The checkpoint loop shared by [`run`] and [`rerun_from`]. `schedule`
/// entries at [`WARMUP_SECS`] are submitted right after warm-up;
/// everything else at the first checkpoint at or after its `at_secs`.
fn drive(spec: &ScenarioSpec, schedule: Vec<ArrivalSpec>) -> ScenarioRun {
    assert!(!spec.checkpoints.is_empty(), "need at least one checkpoint");
    let t0 = Instant::now();
    let mut scen = setup(spec);
    let mut pending = schedule.into_iter().peekable();
    // up-front submissions (the oversized starver on generated runs, its
    // recorded arrival on replays)
    while pending.peek().is_some_and(|a| a.at_secs <= WARMUP_SECS) {
        let a = pending.next().expect("peeked");
        scen.submit(&a.name, a.procs);
    }

    let mut decisions = Vec::new();
    let mut deferred = Vec::new();
    let mut last_started: Option<JobId> = None;
    let mut lease_loads: BTreeMap<JobId, Vec<(NodeId, u32)>> = BTreeMap::new();
    for &cp in &spec.checkpoints {
        let target = SimTime::from_secs(cp);
        scen.env.advance(target.since(scen.env.cluster.now()));
        if spec.complete_prev {
            if let Some(prev) = last_started.take() {
                scen.broker.complete(prev);
                if let Some(loads) = lease_loads.remove(&prev) {
                    for (node, procs) in loads {
                        scen.env.cluster.add_job_load(node, -(procs as f64));
                    }
                }
            }
        }
        while pending.peek().is_some_and(|a| a.at_secs <= cp) {
            let a = pending.next().expect("peeked");
            scen.submit(&a.name, a.procs);
        }
        let snap = scen.env.snapshot();
        for event in scen.broker.tick(&snap) {
            match event {
                BrokerEvent::Started(lease) => {
                    last_started = Some(lease.id);
                    if spec.lease_load {
                        for &(node, procs) in &lease.allocation.nodes {
                            scen.env.cluster.add_job_load(node, procs as f64);
                        }
                        lease_loads.insert(lease.id, lease.allocation.nodes.clone());
                    }
                    decisions.push(Decision {
                        job: lease.name.clone(),
                        trace: lease.trace,
                        granted_at: snap.taken_at,
                        nodes: lease.allocation.node_list(),
                        cost: lease.allocation.diagnostics.total_cost,
                        explain: lease
                            .allocation
                            .diagnostics
                            .explain
                            .clone()
                            .expect("broker grants carry explain traces"),
                    });
                }
                BrokerEvent::Deferred { id, reason } => {
                    deferred.push((scen.job_name(id), reason));
                }
            }
        }
    }

    let fin = scen.finish();
    ScenarioRun {
        obs: fin.obs,
        decisions,
        deferred,
        relaunches: fin.relaunches,
        failovers: fin.failovers,
        record: fin.record,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs_scenario::QUICK_CHECKPOINTS;
    use nlrm_obs::replay;

    #[test]
    fn fault_codec_round_trips() {
        let plan = standard_fault_storyline();
        for ev in plan.events() {
            let t = encode_fault_target(&ev.target);
            let a = encode_fault_action(&ev.action);
            assert_eq!(decode_fault_target(&t), Some(ev.target));
            assert_eq!(decode_fault_action(&a), Some(ev.action));
        }
        assert_eq!(
            decode_fault_action("hang:2000000"),
            Some(FaultAction::Hang(Duration::from_secs(2)))
        );
        assert_eq!(decode_fault_target("daemon:nodestate:oops"), None);
        assert_eq!(decode_fault_action("explode"), None);
    }

    #[test]
    fn recorded_run_replays_bit_identically() {
        let mut spec = ScenarioSpec::new("replay-smoke", 7, QUICK_CHECKPOINTS);
        spec.faulted = true;
        spec.submit_huge = true;
        spec.telemetry = true;
        spec.record = true;
        let spec = spec.standard_arrivals(16);
        let original = run(&spec);
        let record = original.record.as_ref().expect("recording enabled");
        assert!(!record.arrivals.is_empty());
        assert!(!record.faults.is_empty());
        assert!(!record.streams.is_empty(), "probe streams must be taped");
        let replay = rerun_from(record);
        let report = replay::compare(record, replay.record.as_ref().expect("replay records"));
        assert!(
            report.is_identical(),
            "replay diverged: {:?}",
            report.divergence
        );
    }
}
