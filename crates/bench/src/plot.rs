//! Minimal SVG plotting — enough to render the paper's figures from the
//! reproduction data without any plotting dependency.
//!
//! Supports multi-series line charts ([`LinePlot`], used for Figs. 1, 2b,
//! 4, 6) and matrix heatmaps ([`heatmap_svg`], used for Figs. 2a and 7).

use nlrm_monitor::SymMatrix;
use nlrm_topology::NodeId;
use std::fmt::Write as _;

/// Categorical series colors (colorblind-friendly).
const COLORS: &[&str] = &[
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 48.0;

/// A multi-series line chart.
#[derive(Debug, Clone, Default)]
pub struct LinePlot {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LinePlot {
    /// An empty chart with labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        LinePlot {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add one named series of `(x, y)` points.
    pub fn series(&mut self, name: &str, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series have been added.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn bounds(&self) -> (f64, f64, f64, f64) {
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                if x.is_finite() && y.is_finite() {
                    x0 = x0.min(x);
                    x1 = x1.max(x);
                    y0 = y0.min(y);
                    y1 = y1.max(y);
                }
            }
        }
        if !x0.is_finite() {
            return (0.0, 1.0, 0.0, 1.0);
        }
        // include zero on the y axis (the paper's plots all do) + headroom
        y0 = y0.min(0.0);
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        (x0, x1, y0, y1 + (y1 - y0) * 0.05)
    }

    /// Render to an SVG document of the given pixel size.
    pub fn to_svg(&self, width: u32, height: u32) -> String {
        let (w, h) = (width as f64, height as f64);
        let (x0, x1, y0, y1) = self.bounds();
        let plot_w = w - MARGIN_L - MARGIN_R;
        let plot_h = h - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * plot_w;
        let sy = |y: f64| MARGIN_T + (1.0 - (y - y0) / (y1 - y0)) * plot_h;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" font-family="sans-serif" font-size="11">"#
        );
        let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="20" text-anchor="middle" font-size="14">{}</text>"#,
            w / 2.0,
            xml_escape(&self.title)
        );

        // grid + ticks: 5 divisions each axis
        for i in 0..=5 {
            let fx = x0 + (x1 - x0) * i as f64 / 5.0;
            let fy = y0 + (y1 - y0) * i as f64 / 5.0;
            let px = sx(fx);
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"<line x1="{px:.1}" y1="{MARGIN_T}" x2="{px:.1}" y2="{:.1}" stroke="#eee"/>"##,
                MARGIN_T + plot_h
            );
            let _ = writeln!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{py:.1}" x2="{:.1}" y2="{py:.1}" stroke="#eee"/>"##,
                MARGIN_L + plot_w
            );
            let _ = writeln!(
                svg,
                r#"<text x="{px:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
                MARGIN_T + plot_h + 16.0,
                fmt_tick(fx)
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                py + 4.0,
                fmt_tick(fy)
            );
        }
        // axes
        let _ = writeln!(
            svg,
            r##"<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#333"/>"##
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            h - 10.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="14" y="{}" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );

        // series
        for (i, (name, pts)) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let mut path = String::new();
            for &(x, y) in pts {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                let _ = write!(path, "{:.1},{:.1} ", sx(x), sy(y));
            }
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.6"/>"#,
                path.trim_end()
            );
            // legend
            let ly = MARGIN_T + 14.0 * i as f64 + 8.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/>"#,
                MARGIN_L + plot_w - 118.0,
                MARGIN_L + plot_w - 100.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}">{}</text>"#,
                MARGIN_L + plot_w - 96.0,
                ly + 4.0,
                xml_escape(name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a symmetric matrix as an SVG heatmap. Higher value → darker cell
/// (the paper's complement-bandwidth shading).
pub fn heatmap_svg(matrix: &SymMatrix<f64>, labels: &[String], title: &str) -> String {
    let n = matrix.len();
    assert_eq!(labels.len(), n);
    let cell = 12.0f64;
    let label_w = 70.0f64;
    let w = label_w + n as f64 * cell + 20.0;
    let h = 40.0 + n as f64 * cell + 10.0;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, _, v) in matrix.pairs() {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() {
        lo = 0.0;
        hi = 1.0;
    }
    let span = (hi - lo).max(f64::EPSILON);
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" font-family="sans-serif" font-size="8">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect width="{w:.0}" height="{h:.0}" fill="white"/>"#
    );
    let _ = writeln!(
        svg,
        r#"<text x="{:.0}" y="18" text-anchor="middle" font-size="12">{}</text>"#,
        w / 2.0,
        xml_escape(title)
    );
    for (u, label) in labels.iter().enumerate() {
        let y = 32.0 + u as f64 * cell;
        let _ = writeln!(
            svg,
            r#"<text x="{:.0}" y="{:.1}" text-anchor="end">{}</text>"#,
            label_w - 4.0,
            y + cell - 3.0,
            xml_escape(label)
        );
        for v in 0..n {
            let x = label_w + v as f64 * cell;
            let fill = if u == v {
                "#ffffff".to_string()
            } else {
                let val = matrix.get(NodeId(u as u32), NodeId(v as u32));
                let t = if val.is_finite() {
                    ((val - lo) / span).clamp(0.0, 1.0)
                } else {
                    1.0
                };
                // light (low) → dark blue (high)
                let shade = (235.0 - t * 205.0) as u8;
                format!("#{0:02x}{0:02x}ff", shade)
            };
            let _ = writeln!(
                svg,
                r##"<rect x="{x:.1}" y="{:.1}" width="{cell:.1}" height="{cell:.1}" fill="{fill}" stroke="#f8f8f8" stroke-width="0.3"/>"##,
                32.0 + u as f64 * cell
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> LinePlot {
        let mut p = LinePlot::new("test", "x", "y");
        p.series("a", vec![(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]);
        p.series("b", vec![(0.0, 0.5), (1.0, 0.7)]);
        p
    }

    #[test]
    fn svg_contains_structure() {
        let svg = sample_plot().to_svg(640, 400);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
        assert!(svg.contains("test"));
    }

    #[test]
    fn points_land_inside_the_plot_area() {
        let svg = sample_plot().to_svg(640, 400);
        let line = svg
            .lines()
            .find(|l| l.contains("<polyline"))
            .expect("has a polyline");
        let points = line.split('"').nth(1).unwrap();
        for pair in points.split_whitespace() {
            let mut it = pair.split(',');
            let x: f64 = it.next().unwrap().parse().unwrap();
            let y: f64 = it.next().unwrap().parse().unwrap();
            assert!(
                (MARGIN_L - 0.5..=640.0 - MARGIN_R + 0.5).contains(&x),
                "x={x}"
            );
            assert!(
                (MARGIN_T - 0.5..=400.0 - MARGIN_B + 0.5).contains(&y),
                "y={y}"
            );
        }
    }

    #[test]
    fn empty_plot_renders_without_panic() {
        let svg = LinePlot::new("empty", "x", "y").to_svg(320, 200);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn nan_points_are_skipped() {
        let mut p = LinePlot::new("nan", "x", "y");
        p.series("a", vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 2.0)]);
        let svg = p.to_svg(320, 200);
        let line = svg.lines().find(|l| l.contains("<polyline")).unwrap();
        let points = line.split('"').nth(1).unwrap();
        assert_eq!(points.split_whitespace().count(), 2);
    }

    #[test]
    fn escapes_xml_in_labels() {
        let svg = LinePlot::new("a<b & c", "x", "y").to_svg(320, 200);
        assert!(svg.contains("a&lt;b &amp; c"));
    }

    #[test]
    fn heatmap_svg_renders_all_cells() {
        let mut m = SymMatrix::new(3, 0.0);
        m.set(NodeId(0), NodeId(1), 1.0);
        m.set(NodeId(0), NodeId(2), 5.0);
        m.set(NodeId(1), NodeId(2), 9.0);
        let labels: Vec<String> = (0..3).map(|i| format!("n{i}")).collect();
        let svg = heatmap_svg(&m, &labels, "hm");
        assert_eq!(svg.matches("<rect").count(), 1 + 9); // background + cells
        assert!(svg.contains(">n2</text>"));
    }
}
