//! The trial protocol shared by all experiments.

use nlrm_cluster::ClusterSim;
use nlrm_core::{AllocError, Allocation, AllocationRequest, Policy};
use nlrm_monitor::{ClusterSnapshot, MonitorRuntime};
use nlrm_mpi::pattern::Workload;
use nlrm_mpi::{execute, Communicator, JobTiming};
use nlrm_sim_core::time::Duration;

/// A monitored cluster ready to take allocation trials.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// The master cluster timeline.
    pub cluster: ClusterSim,
    /// The monitoring stack bound to it.
    pub monitor: MonitorRuntime,
}

/// One policy's outcome on one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Policy display name.
    pub policy: String,
    /// The allocation it chose.
    pub allocation: Allocation,
    /// Execution timing of the workload on that allocation.
    pub timing: JobTiming,
}

impl Experiment {
    /// Wrap `cluster` with a default monitoring stack.
    pub fn new(cluster: ClusterSim) -> Self {
        let monitor = MonitorRuntime::new(&cluster);
        Experiment { cluster, monitor }
    }

    /// Advance cluster + monitoring by `d` (warm-up / between repetitions).
    pub fn advance(&mut self, d: Duration) {
        let target = self.cluster.now() + d;
        self.monitor.run_until(&mut self.cluster, target);
    }

    /// Current snapshot from the monitor's store.
    pub fn snapshot(&self) -> ClusterSnapshot {
        self.monitor
            .snapshot(self.cluster.now())
            .expect("monitor must be warmed before snapshotting")
    }

    /// Run one policy on the given workload.
    ///
    /// The policy allocates from `snap`; the job executes on a **clone** of
    /// the master cluster, leaving the master timeline untouched so every
    /// policy in a comparison faces the same conditions.
    pub fn run_policy(
        &self,
        policy: &mut dyn Policy,
        snap: &ClusterSnapshot,
        req: &AllocationRequest,
        workload: &dyn Workload,
    ) -> Result<TrialResult, AllocError> {
        let allocation = policy.allocate(snap, req)?;
        let comm = Communicator::new(allocation.rank_map.clone());
        let mut cluster = self.cluster.clone();
        let timing = execute(&mut cluster, &comm, workload);
        Ok(TrialResult {
            policy: policy.name().to_string(),
            allocation,
            timing,
        })
    }

    /// Run a whole policy set on one snapshot (one repetition of the
    /// paper's "all four approaches in sequence").
    pub fn compare(
        &self,
        policies: &mut [Box<dyn Policy>],
        req: &AllocationRequest,
        workload: &dyn Workload,
    ) -> Result<Vec<TrialResult>, AllocError> {
        let snap = self.snapshot();
        policies
            .iter_mut()
            .map(|p| self.run_policy(p.as_mut(), &snap, req, workload))
            .collect()
    }
}

/// The paper's four policies, freshly constructed. `seed` feeds the random
/// and sequential baselines.
pub fn paper_policies(seed: u64) -> Vec<Box<dyn Policy>> {
    vec![
        Box::new(nlrm_core::RandomPolicy::new(seed)),
        Box::new(nlrm_core::SequentialPolicy::new(seed)),
        Box::new(nlrm_core::LoadAwarePolicy::new()),
        Box::new(nlrm_core::NetworkLoadAwarePolicy::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nlrm_apps::MiniMd;
    use nlrm_cluster::iitk::small_cluster;

    #[test]
    fn compare_runs_all_policies_on_same_snapshot() {
        let mut env = Experiment::new(small_cluster(8, 3));
        env.advance(Duration::from_secs(360));
        let req = AllocationRequest::minimd(16);
        let workload = MiniMd::new(8).with_steps(5);
        let results = env
            .compare(&mut paper_policies(1), &req, &workload)
            .unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.allocation.total_procs(), 16);
            assert!(r.timing.total_s > 0.0, "{} ran for 0 s", r.policy);
            assert_eq!(r.timing.steps, 5);
        }
        // policy names distinct
        let names: std::collections::HashSet<_> =
            results.iter().map(|r| r.policy.clone()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn master_timeline_is_untouched_by_trials() {
        let mut env = Experiment::new(small_cluster(6, 5));
        env.advance(Duration::from_secs(360));
        let before = env.cluster.now();
        let req = AllocationRequest::minimd(8);
        let workload = MiniMd::new(8).with_steps(3);
        env.compare(&mut paper_policies(2), &req, &workload)
            .unwrap();
        assert_eq!(env.cluster.now(), before, "trials leaked into master");
    }

    #[test]
    fn identical_policies_get_identical_timings() {
        let mut env = Experiment::new(small_cluster(8, 7));
        env.advance(Duration::from_secs(360));
        let req = AllocationRequest::minimd(16);
        let workload = MiniMd::new(8).with_steps(3);
        let snap = env.snapshot();
        let a = env
            .run_policy(
                &mut nlrm_core::NetworkLoadAwarePolicy::new(),
                &snap,
                &req,
                &workload,
            )
            .unwrap();
        let b = env
            .run_policy(
                &mut nlrm_core::NetworkLoadAwarePolicy::new(),
                &snap,
                &req,
                &workload,
            )
            .unwrap();
        assert_eq!(a.timing, b.timing, "same policy, same clone, same time");
    }
}
