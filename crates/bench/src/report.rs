//! Report output: Markdown tables and CSV files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Resolve (and create) the results directory. Defaults to
/// `<workspace>/results/`; the `NLRM_RESULTS_DIR` environment variable
/// overrides the location (CI points it at a temp dir).
pub fn results_dir() -> PathBuf {
    let dir = match std::env::var("NLRM_RESULTS_DIR") {
        Ok(d) if !d.is_empty() => PathBuf::from(d),
        _ => {
            // bench crate lives at <ws>/crates/bench
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .ancestors()
                .nth(2)
                .expect("workspace root exists")
                .join("results")
        }
    };
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write `contents` to `results/<name>` and echo the path (suppressed
/// under `NLRM_QUIET`).
pub fn write_result(name: &str, contents: &str) -> io::Result<PathBuf> {
    let path = results_dir().join(name);
    fs::write(&path, contents)?;
    if !nlrm_obs::progress::quiet() {
        println!("wrote {}", path.display());
    }
    Ok(path)
}

/// A simple column-aligned text/markdown table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Render as GitHub-flavored Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 10.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown_and_csv() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn ragged_row_panics() {
        Table::new(&["a"]).row(&["1".into(), "2".into()]);
    }

    #[test]
    fn results_dir_exists() {
        // Default and override cases share one invariant: the directory is
        // created. (The env var itself is not mutated here — parallel tests
        // share the process environment.)
        let d = results_dir();
        assert!(d.is_dir());
    }

    #[test]
    fn write_result_roundtrips() {
        let path = write_result("report_test_scratch.txt", "ok\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "ok\n");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn fmt_secs_precision() {
        assert_eq!(fmt_secs(123.4), "123");
        assert_eq!(fmt_secs(12.34), "12.3");
        assert_eq!(fmt_secs(1.234), "1.23");
    }
}
