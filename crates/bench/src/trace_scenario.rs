//! The traced multi-job faulted-broker scenario behind `trace_report`.
//!
//! Same fault storyline as [`crate::obs_scenario`] (daemon kills, a
//! master failover, a headless supervision plane), but every granted
//! job actually *executes* on the master cluster through the traced MPI
//! executor. Each job's trace therefore covers its whole lifecycle:
//!
//! - the root `job` span opened by the broker at submission,
//! - a `queue_wait` span from submission to grant (jobs are submitted
//!   *before* the cluster advances to the next scheduling pass, so the
//!   wait is a real, nonzero critical-path segment),
//! - `scoring` / `placement` instants from the allocator,
//! - the per-step / per-rank / per-collective execution subtree from
//!   [`nlrm_mpi::execute_traced`],
//! - the root closed by [`Broker::complete_at`] when the job finishes.
//!
//! The result carries the observer (spans + journal + metrics) and a
//! per-job record, enough to build critical paths and a Chrome trace
//! for every job.

use crate::scenario::{self, ScenarioSpec};
use nlrm_apps::MiniMd;
use nlrm_core::broker::{BrokerEvent, JobId};
use nlrm_mpi::{execute_traced, Communicator, JobTiming, TraceCtx};
use nlrm_obs::{Obs, TraceId};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_topology::NodeId;
use std::collections::BTreeMap;

/// One job's full traced lifecycle.
#[derive(Debug, Clone)]
pub struct TracedJob {
    /// Job display name.
    pub name: String,
    /// The trace every span and journal line of this job carries.
    pub trace: TraceId,
    /// Virtual time the broker accepted the submission.
    pub submitted_at: SimTime,
    /// Virtual time the broker granted the allocation.
    pub granted_at: SimTime,
    /// Virtual time the job finished executing.
    pub completed_at: SimTime,
    /// The nodes it ran on.
    pub nodes: Vec<NodeId>,
    /// Executor timing breakdown.
    pub timing: JobTiming,
}

impl TracedJob {
    /// Time spent queued: grant minus submission.
    pub fn queue_wait(&self) -> Duration {
        self.granted_at - self.submitted_at
    }

    /// Whole-lifecycle duration: completion minus submission. Equals the
    /// root `job` span's duration, and therefore the critical-path total.
    pub fn lifecycle(&self) -> Duration {
        self.completed_at - self.submitted_at
    }
}

/// Everything the traced scenario produced.
#[derive(Debug, Clone)]
pub struct TraceScenarioResult {
    /// Spans + journal + metrics captured during the run.
    pub obs: Obs,
    /// Executed jobs in completion order.
    pub jobs: Vec<TracedJob>,
    /// `(job, reason)` per deferral, in occurrence order.
    pub deferred: Vec<(String, String)>,
}

/// Timesteps each 16-rank MiniMd runs for. Small enough that a job
/// finishes well before the next checkpoint, large enough that the
/// execution subtree dominates its critical path.
const JOB_STEPS: usize = 10;

/// Run the faulted broker storyline with traced job execution.
///
/// At each checkpoint a fresh 16-process job — submitted back when the
/// *previous* checkpoint's work ended, so it has queued across the gap —
/// is granted, executed to completion via [`execute_traced`], and
/// completed through the broker. An oversized 64-process job submitted
/// up front stays queued forever, producing `defer` spans every pass.
pub fn run_traced_broker_scenario(seed: u64, checkpoints: &[u64]) -> TraceScenarioResult {
    assert!(!checkpoints.is_empty(), "need at least one checkpoint");
    let mut spec = ScenarioSpec::new("trace-report", seed, checkpoints);
    spec.faulted = true;
    spec.submit_huge = true;
    spec.journal_capacity = 64 * 1024;
    let mut scen = scenario::setup(&spec);
    let huge = *scen
        .names
        .keys()
        .next()
        .expect("setup submits the oversized starver");

    let mut jobs = Vec::new();
    let mut deferred = Vec::new();
    let mut submit_times: BTreeMap<JobId, SimTime> = BTreeMap::new();
    for (i, &cp) in checkpoints.iter().enumerate() {
        // Submit now, schedule at the checkpoint: the job queues across
        // the gap and its trace gets a real queue_wait segment.
        let submitted_at = scen.env.cluster.now();
        let id = scen.submit(&format!("md16-{i}"), 16);
        submit_times.insert(id, submitted_at);

        let target = SimTime::from_secs(cp);
        scen.env.advance(target - scen.env.cluster.now());
        let snap = scen.env.snapshot();
        for event in scen.broker.tick(&snap) {
            match event {
                BrokerEvent::Started(lease) => {
                    let granted_at = snap.taken_at;
                    let comm = Communicator::new(lease.allocation.rank_map.clone());
                    let workload = MiniMd::new(16).with_steps(JOB_STEPS);
                    let tc = TraceCtx {
                        trace: lease.trace,
                        parent: lease.root_span,
                    };
                    let timing = execute_traced(&mut scen.env.cluster, &comm, &workload, Some(&tc));
                    let completed_at = scen.env.cluster.now();
                    jobs.push(TracedJob {
                        name: lease.name.clone(),
                        trace: lease.trace,
                        submitted_at: submit_times.get(&lease.id).copied().unwrap_or(granted_at),
                        granted_at,
                        completed_at,
                        nodes: lease.allocation.node_list(),
                        timing,
                    });
                    scen.broker.complete_at(lease.id, completed_at);
                }
                BrokerEvent::Deferred { id, reason } => {
                    deferred.push((scen.job_name(id), reason));
                }
            }
        }
    }

    // The oversized job will never fit; withdraw it so its trace closes
    // (its root span covers the whole queued lifetime, annotated
    // `cancelled`).
    let now = scen.env.cluster.now();
    scen.broker.cancel_at(huge, now);

    let fin = scen.finish();
    TraceScenarioResult {
        obs: fin.obs,
        jobs,
        deferred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs_scenario::QUICK_CHECKPOINTS;

    #[test]
    fn traced_scenario_produces_complete_traces() {
        let r = run_traced_broker_scenario(7, QUICK_CHECKPOINTS);
        assert_eq!(r.jobs.len(), QUICK_CHECKPOINTS.len());
        assert!(!r.deferred.is_empty(), "oversized job never deferred");
        assert_eq!(r.obs.spans.open_count(), 0, "all spans must be closed");
        for job in &r.jobs {
            assert!(
                job.queue_wait() > Duration::ZERO,
                "{} never queued",
                job.name
            );
            let root = r
                .obs
                .spans
                .root_of(job.trace)
                .unwrap_or_else(|| panic!("{} has no root span", job.name));
            assert_eq!(root.kind, "job");
            assert_eq!(root.duration(), job.lifecycle());
            let path = r
                .obs
                .spans
                .critical_path(job.trace)
                .unwrap_or_else(|| panic!("{} has no critical path", job.name));
            assert_eq!(path.total(), job.lifecycle());
        }
    }
}
