//! Microbenchmarks for the broker's batch-cycle hot path.
//!
//! `broker_sweep` measures whole streams; this file isolates one `tick`:
//! the batched cycle vs the legacy per-job walk over the same 64-job
//! queue (the headline O(jobs × V²) → O(V²) win), and the priority-sort
//! overhead on a deep 1024-job queue with a single examination slot.
//!
//! Brokers are cloned per iteration (`iter_batched`) because a tick
//! mutates the queue and reservation ledger.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_core::broker::{Broker, BrokerConfig, PriorityClass, SchedMode, SubmitOptions};
use nlrm_core::AllocationRequest;
use nlrm_monitor::{ClusterSnapshot, MonitorRuntime};
use nlrm_sim_core::time::Duration;
use std::hint::black_box;

fn snapshot(seed: u64) -> ClusterSnapshot {
    let mut cluster = iitk_cluster(seed);
    let mut rt = MonitorRuntime::new(&cluster);
    rt.warm_snapshot(&mut cluster, Duration::from_secs(360))
        .expect("warm snapshot")
}

/// A broker with `jobs` queued 4–16 proc requests in mixed classes.
fn loaded_broker(mode: SchedMode, jobs: usize) -> Broker {
    let mut broker = Broker::new(BrokerConfig {
        max_load_per_core: None,
        mode,
        ..BrokerConfig::default()
    });
    for i in 0..jobs {
        let procs = [4u32, 8, 16][i % 3];
        let class = match i % 5 {
            0 => PriorityClass::Urgent,
            1 | 2 => PriorityClass::Batch,
            _ => PriorityClass::Normal,
        };
        broker
            .submit_opts(
                format!("j{i}"),
                AllocationRequest::minimd(procs),
                SubmitOptions {
                    class,
                    ..SubmitOptions::default()
                },
            )
            .expect("valid request");
    }
    broker
}

fn bench_tick_modes(c: &mut Criterion) {
    let snap = snapshot(42);
    let mut group = c.benchmark_group("broker_tick_64_jobs");
    for (label, mode) in [
        ("batched", SchedMode::Batched { max_per_tick: 64 }),
        ("per_job", SchedMode::PerJob),
    ] {
        let broker = loaded_broker(mode, 64);
        group.bench_with_input(BenchmarkId::from_parameter(label), &broker, |b, broker| {
            b.iter_batched(
                || broker.clone(),
                |mut br| black_box(br.tick(&snap)),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_deep_queue_sort(c: &mut Criterion) {
    let snap = snapshot(42);
    // max_per_tick = 1: the tick is dominated by stamping + priority-
    // sorting the 1024-deep queue, not by placement
    let broker = loaded_broker(SchedMode::Batched { max_per_tick: 1 }, 1024);
    c.bench_function("broker_priority_sort_1024_deep", |b| {
        b.iter_batched(
            || broker.clone(),
            |mut br| black_box(br.tick(&snap)),
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, bench_tick_modes, bench_deep_queue_sort);
criterion_main!(benches);
