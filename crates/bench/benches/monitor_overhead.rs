//! Monitoring-overhead benchmarks.
//!
//! The paper calls its daemons "light-weight" (§4); these benches put
//! numbers on our implementation: one daemon tick of each kind on the
//! 60-node cluster, record encode/decode, and snapshot assembly.

use criterion::{criterion_group, criterion_main, Criterion};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_monitor::codec::{decode, encode, MonitorRecord};
use nlrm_monitor::daemons::{BandwidthD, LatencyD, LivehostsD, NodeStateD};
use nlrm_monitor::{ClusterSnapshot, MonitorRuntime, SharedStore};
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;
use std::hint::black_box;

fn bench_daemon_ticks(c: &mut Criterion) {
    let mut cluster = iitk_cluster(9);
    cluster.advance(Duration::from_secs(60));
    let store = SharedStore::new();

    c.bench_function("livehosts_tick_v60", |b| {
        let mut d = LivehostsD::new();
        b.iter(|| d.tick(black_box(&cluster), &store))
    });
    c.bench_function("nodestate_tick_one_node", |b| {
        let mut d = NodeStateD::new(NodeId(0));
        let mut t = cluster.clone();
        b.iter(|| {
            t.advance(Duration::from_secs(5));
            d.tick(black_box(&t), &store)
        })
    });
    c.bench_function("latency_sweep_v60", |b| {
        let mut d = LatencyD::new(60);
        let mut t = cluster.clone();
        b.iter(|| {
            t.advance(Duration::from_secs(5));
            d.tick(black_box(&mut t), &store)
        })
    });
    c.bench_function("bandwidth_sweep_v60", |b| {
        let mut d = BandwidthD::new(60);
        let mut t = cluster.clone();
        b.iter(|| {
            t.advance(Duration::from_secs(5));
            d.tick(black_box(&mut t), &store)
        })
    });
}

fn bench_snapshot_assembly(c: &mut Criterion) {
    let mut cluster = iitk_cluster(9);
    let mut rt = MonitorRuntime::new(&cluster);
    rt.run_until(&mut cluster, nlrm_sim_core::time::SimTime::from_secs(400));
    let store = rt.store().clone();
    let now = cluster.now();
    c.bench_function("snapshot_assemble_v60", |b| {
        b.iter(|| ClusterSnapshot::assemble(black_box(&store), 60, now).unwrap())
    });
}

fn bench_codec(c: &mut Criterion) {
    let record = MonitorRecord::BandwidthRow {
        node: NodeId(3),
        avail_bps: (0..60).map(|i| i as f64 * 1e7).collect(),
        peak_bps: vec![1e9; 60],
    };
    c.bench_function("codec_encode_bandwidth_row", |b| {
        b.iter(|| encode(black_box(&record)))
    });
    let bytes = encode(&record);
    c.bench_function("codec_decode_bandwidth_row", |b| {
        b.iter(|| decode(black_box(&bytes)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_daemon_ticks,
    bench_snapshot_assembly,
    bench_codec
);
criterion_main!(benches);
