//! Simulator-throughput benchmarks: how fast virtual time advances, how
//! expensive P2P queries are, and how the max-min contention solver scales
//! with flow count. These bound the cost of every experiment in the suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_mpi::contention::{fair_share_rates, Flow};
use nlrm_sim_core::time::Duration;
use nlrm_topology::NodeId;
use std::hint::black_box;

/// Advance one hour of the 60-node cluster's dynamics (720 steps at 5 s).
fn bench_advance(c: &mut Criterion) {
    c.bench_function("cluster_advance_1h_v60", |b| {
        b.iter_batched(
            || iitk_cluster(5),
            |mut cluster| {
                cluster.advance(Duration::from_hours(1));
                cluster
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

/// A full pairwise bandwidth probe sweep (the BandwidthD inner loop).
fn bench_bandwidth_sweep(c: &mut Criterion) {
    let mut cluster = iitk_cluster(5);
    cluster.advance(Duration::from_secs(60));
    c.bench_function("bandwidth_probe_sweep_v60", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..60u32 {
                for j in (i + 1)..60 {
                    acc += cluster.measure_bandwidth_bps(NodeId(i), NodeId(j));
                }
            }
            black_box(acc)
        })
    });
}

/// Max-min fair rating for growing concurrent-flow counts.
fn bench_contention(c: &mut Criterion) {
    let mut cluster = iitk_cluster(5);
    cluster.advance(Duration::from_secs(60));
    let mut group = c.benchmark_group("fair_share_rates");
    for &k in &[8usize, 32, 128, 512] {
        let flows: Vec<Flow> = (0..k)
            .map(|i| Flow {
                src: NodeId((i % 60) as u32),
                dst: NodeId(((i * 7 + 13) % 60) as u32),
                bytes: 1e6,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &flows, |b, flows| {
            b.iter(|| fair_share_rates(black_box(&cluster), black_box(flows)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_advance,
    bench_bandwidth_sweep,
    bench_contention
);
criterion_main!(benches);
