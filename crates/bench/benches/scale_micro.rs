//! Microbenchmarks for the allocator's hot inner kernels.
//!
//! The scale story (`scale_sweep`) measures whole decisions; this file
//! isolates the three kernels that dominate them — `group_cost` over a
//! candidate's node set, `generate_candidate` from a single start node,
//! and `select_best` over a full candidate slate — so per-kernel
//! regressions show up independently of each other.
//!
//! Clusters are built directly as `Loads` (dense `SymMatrix` or
//! `TieredNl`) rather than through the simulator: these kernels only see
//! load vectors, and skipping the monitor keeps setup milliseconds even
//! at V = 4096.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nlrm_core::candidate::{generate_all_candidates, generate_candidate};
use nlrm_core::select::{group_cost, select_best};
use nlrm_core::{Loads, TieredNl};
use nlrm_monitor::SymMatrix;
use nlrm_topology::NodeId;
use std::hint::black_box;

const PER_SWITCH: u32 = 16;
const ALPHA: f64 = 0.4;
const BETA: f64 = 0.6;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn frac(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn cl_vec(v: u32, seed: u64) -> Vec<f64> {
    (0..v)
        .map(|n| 0.1 + 0.8 * frac(splitmix64(seed ^ (n as u64 + 17))))
        .collect()
}

fn dense_loads(v: u32, seed: u64) -> Loads {
    let nodes: Vec<NodeId> = (0..v).map(NodeId).collect();
    let mut nl = SymMatrix::new(v as usize, 0.0);
    for a in 0..v {
        for b in (a + 1)..v {
            let h = splitmix64(seed ^ (a as u64 * 1_000_003 + b as u64));
            nl.set(NodeId(a), NodeId(b), 0.05 + 0.5 * frac(h));
        }
    }
    Loads::from_parts(nodes, cl_vec(v, seed), nl, vec![4u32; v as usize])
}

fn tiered_loads(v: u32, seed: u64) -> Loads {
    let nodes: Vec<NodeId> = (0..v).map(NodeId).collect();
    let switch_of: Vec<u32> = (0..v).map(|n| n / PER_SWITCH).collect();
    let nl = TieredNl::from_fns(
        &nodes,
        &switch_of,
        v.div_ceil(PER_SWITCH) as usize,
        |a, b| {
            let h = splitmix64(seed ^ (a.index() as u64 * 1_000_003 + b.index() as u64));
            0.05 + 0.3 * frac(h)
        },
        |s, t| {
            let h = splitmix64(seed ^ (((s as u64) << 32) | t as u64));
            0.2 + 0.6 * frac(h)
        },
    );
    Loads::from_parts(nodes, cl_vec(v, seed), nl, vec![4u32; v as usize])
}

/// Eq. 4 cost of one candidate group, dense vs tiered representation.
fn bench_group_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("group_cost");
    for &g in &[16usize, 64, 256] {
        let v = (4 * g as u32).max(256);
        let dense = dense_loads(v, 3);
        let tiered = tiered_loads(v, 3);
        // every 3rd node: members span switches like a real candidate
        let members: Vec<NodeId> = (0..g as u32).map(|i| NodeId(i * 3)).collect();
        group.bench_with_input(BenchmarkId::new("dense", g), &g, |b, _| {
            b.iter(|| group_cost(black_box(&dense), black_box(&members), ALPHA, BETA))
        });
        group.bench_with_input(BenchmarkId::new("tiered", g), &g, |b, _| {
            b.iter(|| group_cost(black_box(&tiered), black_box(&members), ALPHA, BETA))
        });
    }
    group.finish();
}

/// Algorithm 1 from a single start node: the bounded-heap greedy walk.
fn bench_generate_candidate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_candidate");
    group.sample_size(30);
    for &v in &[256u32, 1024, 4096] {
        let dense = dense_loads(v, 5);
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| generate_candidate(black_box(&dense), NodeId(v / 2), 64, ALPHA, BETA))
        });
    }
    group.finish();
}

/// Algorithm 2 over a full candidate slate (one candidate per start).
fn bench_select_best(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_best");
    group.sample_size(20);
    for &v in &[256u32, 1024] {
        let tiered = tiered_loads(v, 9);
        let cands = generate_all_candidates(&tiered, 64, ALPHA, BETA);
        group.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, _| {
            b.iter(|| select_best(black_box(&tiered), black_box(&cands), ALPHA, BETA))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_group_cost,
    bench_generate_candidate,
    bench_select_best
);
criterion_main!(benches);
