//! Allocator-runtime benchmarks.
//!
//! The paper claims "the total run-time of the whole algorithm … is ~1–2 ms"
//! at V = 60 nodes, with complexity O(V² log V) for candidate generation
//! (§3.3.2). This bench verifies the absolute number on the paper's cluster
//! size, the scaling shape over V, the baselines for comparison, and the
//! §3.3.2 switch-group variant at large V.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nlrm_cluster::iitk::iitk_cluster;
use nlrm_cluster::{ClusterProfile, ClusterSim, NodeSpec};
use nlrm_core::groups::ScalableAllocator;
use nlrm_core::{AllocationRequest, LoadAwarePolicy, NetworkLoadAwarePolicy, Policy, RandomPolicy};
use nlrm_monitor::{ClusterSnapshot, MonitorRuntime};
use nlrm_sim_core::time::Duration;
use nlrm_topology::{LinkParams, Topology};
use std::hint::black_box;

fn snapshot_for(cluster: &mut ClusterSim) -> ClusterSnapshot {
    let mut rt = MonitorRuntime::new(cluster);
    rt.warm_snapshot(cluster, Duration::from_secs(360))
        .expect("snapshot")
}

fn synthetic_cluster(n: usize, seed: u64) -> ClusterSim {
    let per_switch = 16usize;
    let switches = n.div_ceil(per_switch);
    let mut counts = vec![per_switch; switches];
    *counts.last_mut().unwrap() = n - per_switch * (switches - 1);
    let topo = Topology::star_of_switches(&counts, LinkParams::gigabit(), LinkParams::gigabit());
    let specs = (0..n)
        .map(|i| NodeSpec {
            hostname: format!("n{i}"),
            cores: 8,
            freq_ghz: 3.0,
            total_mem_gb: 16.0,
        })
        .collect();
    ClusterSim::new(topo, specs, ClusterProfile::shared_lab(), seed)
}

/// The paper's headline: full Algorithm 1 + 2 on the 60-node IIT-K cluster.
fn bench_paper_cluster(c: &mut Criterion) {
    let mut cluster = iitk_cluster(42);
    let snap = snapshot_for(&mut cluster);
    let req = AllocationRequest::minimd(32);
    c.bench_function("nla_allocate_v60_paper_claim_1_2ms", |b| {
        b.iter(|| {
            NetworkLoadAwarePolicy::new()
                .allocate(black_box(&snap), black_box(&req))
                .unwrap()
        })
    });
}

/// Scaling over cluster size (expected ~V² log V).
fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("nla_allocate_scaling");
    group.sample_size(20);
    for &n in &[16usize, 32, 64, 128, 256] {
        let mut cluster = synthetic_cluster(n, 7);
        let snap = snapshot_for(&mut cluster);
        let req = AllocationRequest::minimd(32);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                NetworkLoadAwarePolicy::new()
                    .allocate(black_box(&snap), black_box(&req))
                    .unwrap()
            })
        });
    }
    group.finish();
}

/// Baselines at V = 60 for cost comparison.
fn bench_baselines(c: &mut Criterion) {
    let mut cluster = iitk_cluster(42);
    let snap = snapshot_for(&mut cluster);
    let req = AllocationRequest::minimd(32);
    c.bench_function("random_allocate_v60", |b| {
        let mut p = RandomPolicy::new(1);
        b.iter(|| p.allocate(black_box(&snap), black_box(&req)).unwrap())
    });
    c.bench_function("load_aware_allocate_v60", |b| {
        b.iter(|| {
            LoadAwarePolicy::new()
                .allocate(black_box(&snap), black_box(&req))
                .unwrap()
        })
    });
}

/// The §3.3.2 two-level variant at a scale where flat allocation strains.
fn bench_scalable_variant(c: &mut Criterion) {
    let mut cluster = synthetic_cluster(256, 11);
    let snap = snapshot_for(&mut cluster);
    let topo = cluster.topology().clone();
    let req = AllocationRequest::minimd(32);
    c.bench_function("scalable_allocate_v256", |b| {
        let alloc = ScalableAllocator::new();
        b.iter(|| {
            alloc
                .allocate(black_box(&topo), black_box(&snap), black_box(&req))
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_paper_cluster,
    bench_scaling,
    bench_baselines,
    bench_scalable_variant
);
criterion_main!(benches);
