//! # nlrm-sim-core
//!
//! Discrete-event simulation core used by the whole `nlrm` workspace.
//!
//! The ICPP'20 paper evaluates its allocator on a live shared cluster at
//! IIT Kanpur. We reproduce that substrate in simulation, which requires a
//! small but solid foundation:
//!
//! * [`SimTime`] / [`Duration`] — a totally-ordered virtual clock,
//! * [`EventQueue`] — a deterministic event queue with FIFO tie-breaking,
//! * [`FaultPlan`] — scheduled kill/hang/delay fault injection against
//!   arbitrary targets, drained as virtual time advances,
//! * [`RngFactory`] — named, independent, reproducible RNG streams,
//! * [`process`] — stochastic processes (Ornstein–Uhlenbeck, Poisson spike
//!   trains, bounded random walks, Markov chains, diurnal modulation) that
//!   drive background node load and network traffic,
//! * [`window`] — time-windowed running means (the paper's 1/5/15-minute
//!   attribute histories),
//! * [`stats`] — summary statistics (mean/median/max/CoV) used throughout
//!   the evaluation section,
//! * [`forecast`] — NWS-style one-step-ahead predictors and the adaptive
//!   best-of ensemble (paper §2's forecasting substrate),
//! * [`series`] — time series recording for the figure reproductions.
//!
//! Everything is deterministic given a seed: the experiments in
//! `nlrm-bench` rely on replaying identical cluster histories under
//! different allocation policies.

pub mod event;
pub mod fault;
pub mod forecast;
pub mod process;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;
pub mod window;

pub use event::EventQueue;
pub use fault::{FaultAction, FaultEvent, FaultPlan};
pub use rng::RngFactory;
pub use series::TimeSeries;
pub use stats::{OnlineStats, Summary};
pub use time::{Duration, SimTime};
pub use window::{MultiWindowMean, WindowedMean};
