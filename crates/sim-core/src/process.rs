//! Stochastic processes driving the simulated cluster's background activity.
//!
//! The paper's Figures 1–2 show what a real shared cluster does: CPU load is
//! usually low with occasional spikes, utilization hovers in a band, network
//! traffic is bursty, and P2P bandwidth fluctuates around a topology-defined
//! base value. The processes here are the smallest standard toolbox that
//! reproduces those shapes:
//!
//! * [`OrnsteinUhlenbeck`] — mean-reverting noise (utilization, traffic base),
//! * [`PoissonSpikes`] — random impulses with exponential decay (load spikes
//!   from users launching jobs),
//! * [`BoundedWalk`] — a reflected random walk (memory usage),
//! * [`MarkovChain`] — discrete regimes (user count, lab-session on/off),
//! * [`Diurnal`] — deterministic time-of-day modulation.

use crate::time::SimTime;
use rand::Rng;
use rand::RngCore;

/// A scalar-valued stochastic process advanced in continuous virtual time.
pub trait Process: Send {
    /// Advance the process by `dt` seconds and return the new value.
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> f64;

    /// Current value without advancing.
    fn value(&self) -> f64;
}

/// Sample a standard normal via Box–Muller (no extra crates needed).
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    // Avoid ln(0) by nudging u1 away from zero.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Sample Exp(mean) — exponential with the given mean.
pub fn exponential(mean: f64, rng: &mut dyn RngCore) -> f64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    -mean * u.ln()
}

/// Mean-reverting Ornstein–Uhlenbeck process, clamped to `[floor, ∞)`.
///
/// Uses the exact transition density, so step size does not bias the
/// stationary distribution: `x' = μ + (x−μ)e^{−θΔt} + σ√((1−e^{−2θΔt})/(2θ))·N(0,1)`.
#[derive(Debug, Clone)]
pub struct OrnsteinUhlenbeck {
    /// Long-run mean μ.
    pub mean: f64,
    /// Reversion rate θ (1/seconds).
    pub rate: f64,
    /// Volatility σ.
    pub sigma: f64,
    /// Lower clamp (e.g. 0 for loads).
    pub floor: f64,
    value: f64,
}

impl OrnsteinUhlenbeck {
    /// New process starting at its mean.
    pub fn new(mean: f64, rate: f64, sigma: f64, floor: f64) -> Self {
        assert!(rate > 0.0, "reversion rate must be positive");
        assert!(sigma >= 0.0);
        OrnsteinUhlenbeck {
            mean,
            rate,
            sigma,
            floor,
            value: mean.max(floor),
        }
    }

    /// Override the starting value.
    pub fn starting_at(mut self, value: f64) -> Self {
        self.value = value.max(self.floor);
        self
    }

    /// Construct from the desired *stationary* standard deviation instead
    /// of the raw volatility: `σ = std·√(2θ)`. This is the calibration-
    /// friendly constructor — "the load hovers around `mean` ± `std`".
    pub fn with_stationary_std(mean: f64, rate: f64, std: f64, floor: f64) -> Self {
        assert!(std >= 0.0);
        OrnsteinUhlenbeck::new(mean, rate, std * (2.0 * rate).sqrt(), floor)
    }
}

impl Process for OrnsteinUhlenbeck {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> f64 {
        let decay = (-self.rate * dt).exp();
        let std = self.sigma * ((1.0 - decay * decay) / (2.0 * self.rate)).sqrt();
        let next = self.mean + (self.value - self.mean) * decay + std * standard_normal(rng);
        self.value = next.max(self.floor);
        self.value
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// Poisson-arrival impulses with exponential decay.
///
/// Between arrivals the value decays as `e^{−λ_d t}`; each arrival adds an
/// Exp(mean_amplitude) jump. Models users launching short jobs: CPU load
/// shoots up, then drains.
#[derive(Debug, Clone)]
pub struct PoissonSpikes {
    /// Arrival rate (events per second).
    pub arrival_rate: f64,
    /// Mean spike amplitude (exponentially distributed).
    pub mean_amplitude: f64,
    /// Decay rate of the value (1/seconds).
    pub decay_rate: f64,
    value: f64,
    /// Virtual time remaining until the next arrival.
    next_arrival_in: f64,
    primed: bool,
}

impl PoissonSpikes {
    /// New spike train starting at zero.
    pub fn new(arrival_rate: f64, mean_amplitude: f64, decay_rate: f64) -> Self {
        assert!(arrival_rate >= 0.0 && mean_amplitude >= 0.0 && decay_rate > 0.0);
        PoissonSpikes {
            arrival_rate,
            mean_amplitude,
            decay_rate,
            value: 0.0,
            next_arrival_in: 0.0,
            primed: false,
        }
    }
}

impl Process for PoissonSpikes {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> f64 {
        if self.arrival_rate <= 0.0 {
            self.value *= (-self.decay_rate * dt).exp();
            return self.value;
        }
        if !self.primed {
            self.next_arrival_in = exponential(1.0 / self.arrival_rate, rng);
            self.primed = true;
        }
        let mut remaining = dt;
        while self.next_arrival_in <= remaining {
            // decay up to the arrival, then jump
            self.value *= (-self.decay_rate * self.next_arrival_in).exp();
            self.value += exponential(self.mean_amplitude, rng);
            remaining -= self.next_arrival_in;
            self.next_arrival_in = exponential(1.0 / self.arrival_rate, rng);
        }
        self.next_arrival_in -= remaining;
        self.value *= (-self.decay_rate * remaining).exp();
        self.value
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// Random walk reflected into `[lo, hi]`.
#[derive(Debug, Clone)]
pub struct BoundedWalk {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Per-√second step scale.
    pub sigma: f64,
    value: f64,
}

impl BoundedWalk {
    /// New walk starting at `start`, clamped into the band.
    pub fn new(lo: f64, hi: f64, sigma: f64, start: f64) -> Self {
        assert!(lo < hi, "empty band [{lo}, {hi}]");
        BoundedWalk {
            lo,
            hi,
            sigma,
            value: start.clamp(lo, hi),
        }
    }

    fn reflect(&self, mut x: f64) -> f64 {
        let span = self.hi - self.lo;
        // Fold x into the band by reflecting at the walls.
        loop {
            if x < self.lo {
                x = 2.0 * self.lo - x;
            } else if x > self.hi {
                x = 2.0 * self.hi - x;
            } else {
                return x;
            }
            // A pathological step larger than several spans still terminates:
            // each reflection moves the excursion closer by at least `span`.
            if (x - self.lo).abs() > 1e6 * span {
                return self.lo + span * 0.5;
            }
        }
    }
}

impl Process for BoundedWalk {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> f64 {
        let next = self.value + self.sigma * dt.sqrt() * standard_normal(rng);
        self.value = self.reflect(next);
        self.value
    }

    fn value(&self) -> f64 {
        self.value
    }
}

/// Continuous-time Markov chain over a small set of scalar levels.
///
/// Each state has a mean dwell time; on departure the next state is drawn
/// from that state's transition distribution.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    /// Value emitted in each state.
    pub levels: Vec<f64>,
    /// Mean dwell time per state, seconds.
    pub dwell: Vec<f64>,
    /// Row-stochastic transition matrix (self-transitions allowed).
    pub transition: Vec<Vec<f64>>,
    state: usize,
    time_left: f64,
    primed: bool,
}

impl MarkovChain {
    /// New chain starting in `start_state`.
    pub fn new(
        levels: Vec<f64>,
        dwell: Vec<f64>,
        transition: Vec<Vec<f64>>,
        start_state: usize,
    ) -> Self {
        let n = levels.len();
        assert!(n > 0 && dwell.len() == n && transition.len() == n);
        for row in &transition {
            assert_eq!(row.len(), n);
            let s: f64 = row.iter().sum();
            assert!(
                (s - 1.0).abs() < 1e-9,
                "transition rows must sum to 1, got {s}"
            );
        }
        assert!(start_state < n);
        MarkovChain {
            levels,
            dwell,
            transition,
            state: start_state,
            time_left: 0.0,
            primed: false,
        }
    }

    /// A two-state on/off chain: `off_level`/`on_level` with given mean dwells.
    pub fn on_off(off_level: f64, on_level: f64, mean_off: f64, mean_on: f64) -> Self {
        MarkovChain::new(
            vec![off_level, on_level],
            vec![mean_off, mean_on],
            vec![vec![0.0, 1.0], vec![1.0, 0.0]],
            0,
        )
    }

    /// Index of the current state.
    pub fn state(&self) -> usize {
        self.state
    }

    fn draw_next(&self, rng: &mut dyn RngCore) -> usize {
        let row = &self.transition[self.state];
        let mut u: f64 = rng.gen();
        for (i, &p) in row.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        row.len() - 1
    }
}

impl Process for MarkovChain {
    fn step(&mut self, dt: f64, rng: &mut dyn RngCore) -> f64 {
        if !self.primed {
            self.time_left = exponential(self.dwell[self.state], rng);
            self.primed = true;
        }
        let mut remaining = dt;
        while self.time_left <= remaining {
            remaining -= self.time_left;
            self.state = self.draw_next(rng);
            self.time_left = exponential(self.dwell[self.state], rng);
        }
        self.time_left -= remaining;
        self.levels[self.state]
    }

    fn value(&self) -> f64 {
        self.levels[self.state]
    }
}

/// Deterministic time-of-day multiplier: `1 + amplitude·sin(2π(t−phase)/period)`.
///
/// Used to give the simulated cluster the "busy afternoons, quiet nights"
/// pattern visible in the paper's two-day traces.
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Relative amplitude in `[0, 1]`.
    pub amplitude: f64,
    /// Phase offset in seconds (where in the day the peak sits).
    pub phase: f64,
    /// Period in seconds (24 h by default).
    pub period: f64,
}

impl Diurnal {
    /// Standard 24-hour cycle peaking `peak_hour` hours into the day.
    pub fn daily(amplitude: f64, peak_hour: f64) -> Self {
        assert!((0.0..=1.0).contains(&amplitude));
        Diurnal {
            amplitude,
            // sin peaks at period/4, so shift the peak to peak_hour
            phase: (peak_hour - 6.0) * 3600.0,
            period: 24.0 * 3600.0,
        }
    }

    /// Multiplier at absolute time `t`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        let x = 2.0 * std::f64::consts::PI * (t.as_secs_f64() - self.phase) / self.period;
        1.0 + self.amplitude * x.sin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    fn rng() -> rand::rngs::StdRng {
        RngFactory::new(1234).named("process-tests")
    }

    #[test]
    fn ou_reverts_to_mean() {
        let mut p = OrnsteinUhlenbeck::new(5.0, 0.5, 0.1, 0.0).starting_at(50.0);
        let mut r = rng();
        for _ in 0..2000 {
            p.step(1.0, &mut r);
        }
        assert!((p.value() - 5.0).abs() < 1.5, "value {}", p.value());
    }

    #[test]
    fn ou_stationary_spread_matches_sigma() {
        // stationary std = sigma / sqrt(2*theta)
        let mut p = OrnsteinUhlenbeck::new(10.0, 1.0, 2.0, f64::NEG_INFINITY);
        let mut r = rng();
        let mut samples = Vec::new();
        for _ in 0..20_000 {
            samples.push(p.step(1.0, &mut r));
        }
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        let expected_std = 2.0 / (2.0_f64).sqrt();
        assert!(
            (var.sqrt() - expected_std).abs() < 0.15,
            "std {}",
            var.sqrt()
        );
    }

    #[test]
    fn ou_respects_floor() {
        let mut p = OrnsteinUhlenbeck::new(0.1, 0.2, 1.0, 0.0);
        let mut r = rng();
        for _ in 0..5000 {
            assert!(p.step(1.0, &mut r) >= 0.0);
        }
    }

    #[test]
    fn spikes_arrive_and_decay() {
        let mut p = PoissonSpikes::new(0.05, 2.0, 0.01);
        let mut r = rng();
        let mut peak: f64 = 0.0;
        for _ in 0..5000 {
            peak = peak.max(p.step(1.0, &mut r));
        }
        assert!(peak > 1.0, "no spikes observed, peak {peak}");
        // with arrivals disabled it must decay to ~0
        let mut quiet = PoissonSpikes::new(0.0, 2.0, 0.05);
        quiet.value = 10.0;
        for _ in 0..1000 {
            quiet.step(1.0, &mut r);
        }
        assert!(quiet.value() < 1e-6);
    }

    #[test]
    fn spikes_mean_matches_theory() {
        // Stationary mean of a shot-noise process = rate * amplitude / decay.
        let mut p = PoissonSpikes::new(0.1, 1.0, 0.05);
        let mut r = rng();
        // warm-up
        for _ in 0..2000 {
            p.step(1.0, &mut r);
        }
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| p.step(1.0, &mut r)).sum::<f64>() / n as f64;
        let expected = 0.1 * 1.0 / 0.05; // = 2.0
        assert!((mean - expected).abs() < 0.4, "mean {mean} vs {expected}");
    }

    #[test]
    fn bounded_walk_stays_in_band() {
        let mut p = BoundedWalk::new(0.2, 0.3, 0.05, 0.25);
        let mut r = rng();
        for _ in 0..10_000 {
            let v = p.step(1.0, &mut r);
            assert!((0.2..=0.3).contains(&v), "escaped: {v}");
        }
    }

    #[test]
    fn markov_chain_visits_states_proportionally() {
        let mut p = MarkovChain::on_off(0.0, 1.0, 100.0, 50.0);
        let mut r = rng();
        let n = 100_000;
        let on_frac: f64 = (0..n).map(|_| p.step(1.0, &mut r)).sum::<f64>() / n as f64;
        // expected fraction of time on = 50 / (100 + 50) = 1/3
        assert!((on_frac - 1.0 / 3.0).abs() < 0.05, "on fraction {on_frac}");
    }

    #[test]
    fn diurnal_cycle_peaks_at_requested_hour() {
        let d = Diurnal::daily(0.5, 14.0);
        let at = |h: f64| d.multiplier(SimTime::from_secs_f64(h * 3600.0));
        assert!((at(14.0) - 1.5).abs() < 1e-9);
        assert!((at(2.0) - 0.5).abs() < 1e-9);
        // period of 24h
        assert!((at(14.0) - at(38.0)).abs() < 1e-9);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut r = rng();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
