//! Time-windowed running means.
//!
//! The paper's NodeStateD keeps "the running mean of the last 1, 5, and 15
//! minutes of historical data of dynamic attributes" (§4). [`WindowedMean`]
//! implements one such window over irregularly-sampled data;
//! [`MultiWindowMean`] bundles the three standard windows.

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Mean of all samples observed within a sliding time window.
///
/// Samples are weighted equally (the paper's daemons sample on a fixed-ish
/// period, so sample-mean ≈ time-mean). Evicts samples older than the window.
#[derive(Debug, Clone)]
pub struct WindowedMean {
    window: Duration,
    samples: VecDeque<(SimTime, f64)>,
    sum: f64,
}

impl WindowedMean {
    /// A window of the given length.
    pub fn new(window: Duration) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedMean {
            window,
            samples: VecDeque::new(),
            sum: 0.0,
        }
    }

    /// Record `value` observed at time `t` (must be non-decreasing).
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.samples.back() {
            assert!(t >= last, "samples must arrive in time order");
        }
        self.samples.push_back((t, value));
        self.sum += value;
        self.evict(t);
    }

    fn evict(&mut self, now: SimTime) {
        let cutoff = now.since(SimTime::ZERO);
        while let Some(&(t0, v0)) = self.samples.front() {
            if t0.since(SimTime::ZERO) + self.window < cutoff {
                self.samples.pop_front();
                self.sum -= v0;
            } else {
                break;
            }
        }
        // Periodically re-accumulate to cancel floating point drift.
        if self.samples.len().is_power_of_two() && self.samples.len() >= 1024 {
            self.sum = self.samples.iter().map(|&(_, v)| v).sum();
        }
    }

    /// Mean over the window, or `None` if no samples are retained.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Latest sample value, if any.
    pub fn latest(&self) -> Option<f64> {
        self.samples.back().map(|&(_, v)| v)
    }

    /// Number of samples retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// The paper's standard 1/5/15-minute triple of running means.
#[derive(Debug, Clone)]
pub struct MultiWindowMean {
    one: WindowedMean,
    five: WindowedMean,
    fifteen: WindowedMean,
}

/// A snapshot of the three running means plus the instantaneous value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowedValue {
    /// Most recent raw sample.
    pub instant: f64,
    /// 1-minute running mean.
    pub m1: f64,
    /// 5-minute running mean.
    pub m5: f64,
    /// 15-minute running mean.
    pub m15: f64,
}

impl WindowedValue {
    /// A value with all windows pinned to the same constant (useful for
    /// static attributes and for seeding tests).
    pub fn constant(v: f64) -> Self {
        WindowedValue {
            instant: v,
            m1: v,
            m5: v,
            m15: v,
        }
    }
}

impl Default for MultiWindowMean {
    fn default() -> Self {
        Self::new()
    }
}

impl MultiWindowMean {
    /// Fresh 1/5/15-minute windows.
    pub fn new() -> Self {
        MultiWindowMean {
            one: WindowedMean::new(Duration::from_mins(1)),
            five: WindowedMean::new(Duration::from_mins(5)),
            fifteen: WindowedMean::new(Duration::from_mins(15)),
        }
    }

    /// Record a sample into all three windows.
    pub fn push(&mut self, t: SimTime, value: f64) {
        self.one.push(t, value);
        self.five.push(t, value);
        self.fifteen.push(t, value);
    }

    /// Current instantaneous + windowed view; `None` before any sample.
    pub fn value(&self) -> Option<WindowedValue> {
        Some(WindowedValue {
            instant: self.fifteen.latest()?,
            m1: self.one.mean()?,
            m5: self.five.mean()?,
            m15: self.fifteen.mean()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_mean() {
        let w = WindowedMean::new(Duration::from_mins(1));
        assert_eq!(w.mean(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn mean_over_retained_samples() {
        let mut w = WindowedMean::new(Duration::from_secs(100));
        w.push(SimTime::from_secs(0), 1.0);
        w.push(SimTime::from_secs(10), 3.0);
        assert_eq!(w.mean(), Some(2.0));
        assert_eq!(w.latest(), Some(3.0));
    }

    #[test]
    fn old_samples_evicted() {
        let mut w = WindowedMean::new(Duration::from_secs(60));
        w.push(SimTime::from_secs(0), 100.0);
        w.push(SimTime::from_secs(30), 100.0);
        w.push(SimTime::from_secs(120), 4.0);
        // the two old samples fell out of the 60 s window
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean(), Some(4.0));
    }

    #[test]
    fn boundary_sample_is_retained() {
        let mut w = WindowedMean::new(Duration::from_secs(60));
        w.push(SimTime::from_secs(0), 2.0);
        w.push(SimTime::from_secs(60), 4.0);
        // exactly window-old: kept (window is inclusive)
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_panics() {
        let mut w = WindowedMean::new(Duration::from_secs(60));
        w.push(SimTime::from_secs(10), 1.0);
        w.push(SimTime::from_secs(5), 1.0);
    }

    #[test]
    fn multi_window_separates_horizons() {
        let mut m = MultiWindowMean::new();
        // 20 minutes of value 10 sampled every 10 s, then 30 s of value 0
        let mut t = 0u64;
        while t <= 20 * 60 {
            m.push(SimTime::from_secs(t), 10.0);
            t += 10;
        }
        for s in 1..=3u64 {
            m.push(SimTime::from_secs(20 * 60 + s * 10), 0.0);
        }
        let v = m.value().unwrap();
        assert_eq!(v.instant, 0.0);
        // 1-min window holds 7 samples (4×10, 3×0) → mean 40/7
        assert!(v.m1 < v.m5 && v.m5 < v.m15, "{v:?}");
        assert!(v.m15 > 9.0);
    }

    #[test]
    fn long_run_sum_does_not_drift() {
        let mut w = WindowedMean::new(Duration::from_secs(60));
        for i in 0..200_000u64 {
            w.push(SimTime::from_secs(i), (i % 7) as f64);
        }
        let direct: f64 = (0..200_000u64)
            .rev()
            .take(61)
            .map(|i| (i % 7) as f64)
            .sum::<f64>()
            / 61.0;
        assert!((w.mean().unwrap() - direct).abs() < 1e-9);
    }
}
