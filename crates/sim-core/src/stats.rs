//! Summary statistics used by the evaluation harness.
//!
//! The paper reports average/median/maximum percentage gains (Tables 2–3)
//! and coefficients of variation (§5.1–5.2); [`Summary`] computes all of
//! them from a sample vector, and [`OnlineStats`] provides a streaming
//! (Welford) mean/variance for long simulations.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation σ/μ; 0 when the mean is 0.
    pub fn cov(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }
}

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (average of middle two for even n).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarize `data`. Returns `None` for an empty slice.
    pub fn of(data: &[f64]) -> Option<Summary> {
        if data.is_empty() {
            return None;
        }
        let mut stats = OnlineStats::new();
        for &x in data {
            stats.push(x);
        }
        Some(Summary {
            n: data.len(),
            mean: stats.mean(),
            median: median(data),
            std_dev: stats.std_dev(),
            min: stats.min(),
            max: stats.max(),
        })
    }

    /// Coefficient of variation σ/μ (the paper's run-stability metric).
    pub fn cov(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Median of a sample (not required to be sorted).
pub fn median(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "median of empty sample");
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Linearly-interpolated percentile, `p` in `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> f64 {
    assert!(!data.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p));
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    if v.len() == 1 {
        return v[0];
    }
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

/// Percentage improvement of `ours` over `baseline`:
/// `(baseline − ours) / baseline × 100`.
///
/// This is the paper's "percentage gain in performance" (Tables 2–3):
/// positive when `ours` is faster.
pub fn percent_gain(baseline: f64, ours: f64) -> f64 {
    assert!(baseline > 0.0, "baseline must be positive");
    (baseline - ours) / baseline * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_direct() {
        let data = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert!((s.mean() - 4.0).abs() < 1e-12);
        let direct_var = data.iter().map(|x| (x - 4.0).powi(2)).sum::<f64>() / 5.0;
        assert!((s.variance() - direct_var).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn summary_median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn cov_definition() {
        let s = Summary::of(&[9.0, 11.0]).unwrap();
        // mean 10, std 1 → CoV 0.1
        assert!((s.cov() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&data, 0.0), 10.0);
        assert_eq!(percentile(&data, 100.0), 40.0);
        assert_eq!(percentile(&data, 50.0), 25.0);
    }

    #[test]
    fn percent_gain_matches_paper_convention() {
        // baseline 10 s, ours 5 s → 50% gain
        assert!((percent_gain(10.0, 5.0) - 50.0).abs() < 1e-12);
        // slower than baseline → negative gain
        assert!(percent_gain(10.0, 12.0) < 0.0);
    }
}
