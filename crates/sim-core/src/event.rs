//! Deterministic event queue.
//!
//! A minimal discrete-event scheduler: callers push `(time, payload)` pairs
//! and pop them in time order. Ties are broken by insertion order (FIFO),
//! which keeps simulations reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue over an arbitrary payload type `E`.
///
/// Determinism guarantee: two events scheduled for the same [`SimTime`] are
/// delivered in the order they were pushed.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `payload` at absolute time `time`.
    ///
    /// Panics if `time` is in the past relative to the last popped event —
    /// a DES must never travel backwards.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule event at {time} before now ({})",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing `now` to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Peek at the next event time without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pop all events up to and including `horizon`, in order.
    pub fn drain_until(&mut self, horizon: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(t) = self.peek_time() {
            if t > horizon {
                break;
            }
            out.push(self.pop().expect("peeked event must pop"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), "c");
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(2), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn fifo_tie_breaking() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), ());
        q.pop();
        q.push(SimTime::from_secs(1), ());
    }

    #[test]
    fn drain_until_respects_horizon() {
        let mut q = EventQueue::new();
        for s in 1..=10u64 {
            q.push(SimTime::from_secs(s), s);
        }
        let drained = q.drain_until(SimTime::from_secs(4));
        assert_eq!(drained.len(), 4);
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
        let _ = Duration::ZERO; // keep import used in all cfgs
    }
}
