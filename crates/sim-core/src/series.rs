//! Time-series recording for figure reproduction.
//!
//! Figures 1 and 2(b) of the paper are two-day traces of node and network
//! metrics. [`TimeSeries`] collects `(time, value)` points and can resample
//! onto a regular grid or render to CSV for the experiment binaries.

use crate::stats::Summary;
use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A named sequence of `(time, value)` samples in non-decreasing time order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Display name (e.g. `"node A cpu load"`).
    pub name: String,
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series with a name.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample; time must not decrease.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "samples must arrive in time order");
        }
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Values only.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|&(_, v)| v).collect()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Summary statistics over all values.
    pub fn summary(&self) -> Option<Summary> {
        Summary::of(&self.values())
    }

    /// Resample onto a regular grid by averaging samples inside each bucket.
    /// Empty buckets carry the previous bucket's value (or the first known
    /// value for leading gaps). Returns an empty series if `self` is empty.
    pub fn resample(&self, start: SimTime, step: Duration, buckets: usize) -> TimeSeries {
        let mut out = TimeSeries::new(self.name.clone());
        if self.points.is_empty() {
            return out;
        }
        let mut idx = 0usize;
        let mut last_value = self.points[0].1;
        for b in 0..buckets {
            let lo = start + step.mul_f64(b as f64);
            let hi = start + step.mul_f64((b + 1) as f64);
            let mut sum = 0.0;
            let mut n = 0usize;
            while idx < self.points.len() && self.points[idx].0 < hi {
                if self.points[idx].0 >= lo {
                    sum += self.points[idx].1;
                    n += 1;
                }
                idx += 1;
            }
            if n > 0 {
                last_value = sum / n as f64;
            }
            out.push(lo, last_value);
        }
        out
    }

    /// Render one or more series (sharing a time base) as CSV:
    /// `time_s,name1,name2,...`. Series must have identical lengths and
    /// timestamps (e.g. produced by [`TimeSeries::resample`] on one grid).
    pub fn to_csv(series: &[&TimeSeries]) -> String {
        assert!(!series.is_empty());
        let n = series[0].len();
        for s in series {
            assert_eq!(s.len(), n, "series lengths differ");
        }
        let mut out = String::from("time_s");
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        for i in 0..n {
            let (t, _) = series[0].points[i];
            out.push_str(&format!("{:.1}", t.as_secs_f64()));
            for s in series {
                debug_assert_eq!(s.points[i].0, t, "timestamps differ at row {i}");
                out.push_str(&format!(",{:.6}", s.points[i].1));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_values() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(0), 1.0);
        s.push(SimTime::from_secs(1), 2.0);
        assert_eq!(s.values(), vec![1.0, 2.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(5), 1.0);
        s.push(SimTime::from_secs(1), 2.0);
    }

    #[test]
    fn resample_averages_buckets() {
        let mut s = TimeSeries::new("x");
        for t in 0..10u64 {
            s.push(SimTime::from_secs(t), t as f64);
        }
        let r = s.resample(SimTime::ZERO, Duration::from_secs(5), 2);
        assert_eq!(r.len(), 2);
        // bucket 0: samples 0..4 → mean 2; bucket 1: 5..9 → mean 7
        assert_eq!(r.values(), vec![2.0, 7.0]);
    }

    #[test]
    fn resample_fills_gaps_with_previous() {
        let mut s = TimeSeries::new("x");
        s.push(SimTime::from_secs(0), 3.0);
        s.push(SimTime::from_secs(20), 9.0);
        let r = s.resample(SimTime::ZERO, Duration::from_secs(5), 5);
        assert_eq!(r.values(), vec![3.0, 3.0, 3.0, 3.0, 9.0]);
    }

    #[test]
    fn csv_renders_joint_table() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        for t in 0..3u64 {
            a.push(SimTime::from_secs(t), t as f64);
            b.push(SimTime::from_secs(t), 10.0 * t as f64);
        }
        let csv = TimeSeries::to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert!(lines[1].starts_with("0.0,0.000000,0.000000"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn summary_over_series() {
        let mut s = TimeSeries::new("x");
        for t in 0..5u64 {
            s.push(SimTime::from_secs(t), 2.0);
        }
        let sum = s.summary().unwrap();
        assert_eq!(sum.mean, 2.0);
        assert_eq!(sum.std_dev, 0.0);
    }
}
