//! Time-series forecasting in the style of the Network Weather Service.
//!
//! The paper's §2 describes NWS: it "monitors and forecasts CPU and network
//! performance continuously … applies various time series methods and uses
//! the method that exhibits smallest prediction error for next forecast",
//! and the authors model their composite metric on it. This module supplies
//! that machinery: a family of simple one-step-ahead predictors plus the
//! NWS-style [`AdaptiveEnsemble`] that tracks every member's error and
//! always answers with the current best.

use crate::time::SimTime;
use std::collections::VecDeque;

/// A one-step-ahead forecaster over an irregularly-sampled series.
pub trait Forecaster: Send {
    /// Short display name.
    fn name(&self) -> &'static str;

    /// Feed one observation (times must be non-decreasing).
    fn observe(&mut self, t: SimTime, value: f64);

    /// Predict the next observation; `None` until enough data has arrived.
    fn predict(&self) -> Option<f64>;
}

/// Predicts the last observed value (NWS's "LAST" method) — the baseline
/// every other method must beat.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// Fresh predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastValue {
    fn name(&self) -> &'static str {
        "last-value"
    }
    fn observe(&mut self, _t: SimTime, value: f64) {
        self.last = Some(value);
    }
    fn predict(&self) -> Option<f64> {
        self.last
    }
}

/// Mean of the last `k` observations (NWS's sliding-window mean).
#[derive(Debug, Clone)]
pub struct SlidingMean {
    k: usize,
    window: VecDeque<f64>,
    sum: f64,
}

impl SlidingMean {
    /// Mean over the last `k` samples.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SlidingMean {
            k,
            window: VecDeque::with_capacity(k),
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingMean {
    fn name(&self) -> &'static str {
        "sliding-mean"
    }
    fn observe(&mut self, _t: SimTime, value: f64) {
        self.window.push_back(value);
        self.sum += value;
        if self.window.len() > self.k {
            self.sum -= self.window.pop_front().expect("non-empty");
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }
}

/// Median of the last `k` observations — robust to load spikes.
#[derive(Debug, Clone)]
pub struct SlidingMedian {
    k: usize,
    window: VecDeque<f64>,
}

impl SlidingMedian {
    /// Median over the last `k` samples.
    pub fn new(k: usize) -> Self {
        assert!(k > 0);
        SlidingMedian {
            k,
            window: VecDeque::with_capacity(k),
        }
    }
}

impl Forecaster for SlidingMedian {
    fn name(&self) -> &'static str {
        "sliding-median"
    }
    fn observe(&mut self, _t: SimTime, value: f64) {
        self.window.push_back(value);
        if self.window.len() > self.k {
            self.window.pop_front();
        }
    }
    fn predict(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.window.iter().copied().collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let mid = v.len() / 2;
        Some(if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        })
    }
}

/// Exponentially-weighted moving average with smoothing factor `alpha`.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// `alpha` ∈ (0, 1]: weight of the newest observation.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ewma { alpha, value: None }
    }
}

impl Forecaster for Ewma {
    fn name(&self) -> &'static str {
        "ewma"
    }
    fn observe(&mut self, _t: SimTime, value: f64) {
        self.value = Some(match self.value {
            None => value,
            Some(prev) => prev + self.alpha * (value - prev),
        });
    }
    fn predict(&self) -> Option<f64> {
        self.value
    }
}

/// Least-squares linear trend over the last `k` observations, extrapolated
/// one mean-sample-interval ahead. Captures ramps (a job spinning up).
#[derive(Debug, Clone)]
pub struct LinearTrend {
    k: usize,
    window: VecDeque<(f64, f64)>,
}

impl LinearTrend {
    /// Trend over the last `k` samples (`k ≥ 2`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 2);
        LinearTrend {
            k,
            window: VecDeque::with_capacity(k),
        }
    }
}

impl Forecaster for LinearTrend {
    fn name(&self) -> &'static str {
        "linear-trend"
    }
    fn observe(&mut self, t: SimTime, value: f64) {
        self.window.push_back((t.as_secs_f64(), value));
        if self.window.len() > self.k {
            self.window.pop_front();
        }
    }
    fn predict(&self) -> Option<f64> {
        let n = self.window.len();
        if n < 2 {
            return self.window.back().map(|&(_, v)| v);
        }
        let (mut st, mut sv, mut stt, mut stv) = (0.0, 0.0, 0.0, 0.0);
        for &(t, v) in &self.window {
            st += t;
            sv += v;
            stt += t * t;
            stv += t * v;
        }
        let nf = n as f64;
        let denom = nf * stt - st * st;
        if denom.abs() < 1e-12 {
            return Some(sv / nf);
        }
        let slope = (nf * stv - st * sv) / denom;
        let intercept = (sv - slope * st) / nf;
        // one mean interval past the last sample
        let (t0, _) = *self.window.front().expect("n >= 2");
        let (t1, _) = *self.window.back().expect("n >= 2");
        let step = (t1 - t0) / (n - 1) as f64;
        Some(intercept + slope * (t1 + step))
    }
}

/// The NWS strategy: run several forecasters in parallel, score each on its
/// one-step-ahead error, and answer with the current best.
///
/// ```
/// use nlrm_sim_core::forecast::{AdaptiveEnsemble, Forecaster};
/// use nlrm_sim_core::time::SimTime;
///
/// let mut ens = AdaptiveEnsemble::standard();
/// for i in 0..50u64 {
///     ens.observe(SimTime::from_secs(i * 10), i as f64); // a perfect ramp
/// }
/// assert_eq!(ens.best_member(), "linear-trend");
/// assert!((ens.predict().unwrap() - 50.0).abs() < 1.0);
/// ```
pub struct AdaptiveEnsemble {
    members: Vec<Box<dyn Forecaster>>,
    /// Exponentially-decayed mean *squared* error per member. Squared (not
    /// absolute) so that the rare large misses smoothing predictors make at
    /// load-spike onsets dominate their score: on spiky series the tiny
    /// quiet-period edge a smoother gains must never outweigh its tail risk.
    errors: Vec<f64>,
    /// Scored predictions per member (drives the cold-start cumulative mean).
    scored: Vec<usize>,
    /// Decay factor for the error tracker.
    error_decay: f64,
    /// Currently trusted member. Sticky: a challenger must undercut the
    /// incumbent's error by a clear margin before it takes over, so the
    /// selector doesn't chase noise in near-tied error estimates (straying
    /// from the best member costs more than the near-tie ever pays back).
    current: usize,
    observations: usize,
}

impl AdaptiveEnsemble {
    /// Ensemble over the given members.
    pub fn new(members: Vec<Box<dyn Forecaster>>) -> Self {
        assert!(!members.is_empty());
        let n = members.len();
        AdaptiveEnsemble {
            members,
            errors: vec![0.0; n],
            scored: vec![0; n],
            error_decay: 0.1,
            current: 0,
            observations: 0,
        }
    }

    /// The standard NWS-like battery: last value, short/long sliding means,
    /// a robust median, two EWMAs and a linear trend.
    pub fn standard() -> Self {
        AdaptiveEnsemble::new(vec![
            Box::new(LastValue::new()),
            Box::new(SlidingMean::new(5)),
            Box::new(SlidingMean::new(20)),
            Box::new(SlidingMedian::new(9)),
            Box::new(Ewma::new(0.3)),
            Box::new(Ewma::new(0.05)),
            Box::new(LinearTrend::new(8)),
        ])
    }

    /// Name of the member currently trusted most.
    pub fn best_member(&self) -> &'static str {
        self.members[self.current].name()
    }

    /// Fraction a challenger's error must undercut the incumbent's by.
    const SWITCH_MARGIN: f64 = 0.10;

    fn best_index(&self) -> usize {
        self.errors
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(i, _)| i)
            .expect("non-empty ensemble")
    }

    /// Number of observations consumed.
    pub fn observations(&self) -> usize {
        self.observations
    }
}

impl Forecaster for AdaptiveEnsemble {
    fn name(&self) -> &'static str {
        "adaptive-ensemble"
    }

    fn observe(&mut self, t: SimTime, value: f64) {
        // score every member on the prediction it made *before* seeing value;
        // use the cumulative mean until the decayed tracker has enough
        // samples to dominate its initialization, then switch to exponential
        // decay so the ensemble keeps adapting to regime changes
        for (i, m) in self.members.iter().enumerate() {
            if let Some(pred) = m.predict() {
                let err = (pred - value) * (pred - value);
                self.scored[i] += 1;
                let warmup = 1.0 / self.scored[i] as f64;
                let w = warmup.max(self.error_decay);
                self.errors[i] += w * (err - self.errors[i]);
            }
        }
        for m in &mut self.members {
            m.observe(t, value);
        }
        let best = self.best_index();
        if self.errors[best] < self.errors[self.current] * (1.0 - Self::SWITCH_MARGIN) {
            self.current = best;
        }
        self.observations += 1;
    }

    fn predict(&self) -> Option<f64> {
        self.members[self.current]
            .predict()
            .or_else(|| self.members[self.best_index()].predict())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{OrnsteinUhlenbeck, Process};
    use crate::rng::RngFactory;

    fn t(i: usize) -> SimTime {
        SimTime::from_secs(i as u64 * 10)
    }

    /// Mean absolute one-step error of a forecaster over a series.
    fn mae(f: &mut dyn Forecaster, series: &[f64]) -> f64 {
        let mut err = 0.0;
        let mut n = 0usize;
        for (i, &v) in series.iter().enumerate() {
            if let Some(p) = f.predict() {
                err += (p - v).abs();
                n += 1;
            }
            f.observe(t(i), v);
        }
        err / n.max(1) as f64
    }

    #[test]
    fn constant_series_predicted_exactly() {
        let series = vec![5.0; 50];
        for f in [
            &mut LastValue::new() as &mut dyn Forecaster,
            &mut SlidingMean::new(5),
            &mut SlidingMedian::new(5),
            &mut Ewma::new(0.3),
            &mut LinearTrend::new(5),
            &mut AdaptiveEnsemble::standard(),
        ] {
            assert!(mae(f, &series) < 1e-9, "{} failed on constant", f.name());
        }
    }

    #[test]
    fn trend_wins_on_a_ramp() {
        let series: Vec<f64> = (0..60).map(|i| i as f64 * 2.0).collect();
        let trend_err = mae(&mut LinearTrend::new(8), &series);
        let last_err = mae(&mut LastValue::new(), &series);
        let mean_err = mae(&mut SlidingMean::new(8), &series);
        assert!(trend_err < last_err, "trend {trend_err} vs last {last_err}");
        assert!(trend_err < mean_err, "trend {trend_err} vs mean {mean_err}");
        // tiny residual from the one-sample warm-up prediction; after that
        // the line is extrapolated exactly
        assert!(trend_err < 0.1, "near-perfect on a line, got {trend_err}");
    }

    #[test]
    fn mean_beats_last_value_on_noise() {
        // mean-reverting noise: averaging wins over chasing the last sample
        let mut ou = OrnsteinUhlenbeck::new(10.0, 0.5, 3.0, 0.0);
        let mut rng = RngFactory::new(5).named("forecast");
        let series: Vec<f64> = (0..500).map(|_| ou.step(10.0, &mut rng)).collect();
        let mean_err = mae(&mut SlidingMean::new(20), &series);
        let last_err = mae(&mut LastValue::new(), &series);
        assert!(mean_err < last_err, "mean {mean_err} vs last {last_err}");
    }

    #[test]
    fn median_shrugs_off_spikes() {
        let mut series = vec![1.0; 60];
        for i in (5..60).step_by(10) {
            series[i] = 100.0;
        }
        let med_err = mae(&mut SlidingMedian::new(9), &series);
        let mean_err = mae(&mut SlidingMean::new(9), &series);
        assert!(med_err < mean_err, "median {med_err} vs mean {mean_err}");
    }

    #[test]
    fn ensemble_tracks_the_best_member() {
        // on a ramp the ensemble must converge to the trend member
        let series: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let mut e = AdaptiveEnsemble::standard();
        for (i, &v) in series.iter().enumerate() {
            e.observe(t(i), v);
        }
        assert_eq!(e.best_member(), "linear-trend");
        assert_eq!(e.observations(), 80);
        // and its prediction extrapolates
        let p = e.predict().unwrap();
        assert!((p - 80.0).abs() < 1.0, "prediction {p}");
    }

    #[test]
    fn ensemble_never_much_worse_than_best_fixed_member() {
        let mut ou = OrnsteinUhlenbeck::new(5.0, 0.2, 2.0, 0.0);
        let mut rng = RngFactory::new(9).named("forecast2");
        let series: Vec<f64> = (0..400).map(|_| ou.step(10.0, &mut rng)).collect();
        let best_fixed = [
            mae(&mut LastValue::new(), &series),
            mae(&mut SlidingMean::new(5), &series),
            mae(&mut SlidingMean::new(20), &series),
            mae(&mut Ewma::new(0.3), &series),
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        let ens = mae(&mut AdaptiveEnsemble::standard(), &series);
        assert!(
            ens < best_fixed * 1.25,
            "ensemble {ens} should track best member {best_fixed}"
        );
    }

    #[test]
    fn no_prediction_before_data() {
        assert!(LastValue::new().predict().is_none());
        assert!(SlidingMean::new(3).predict().is_none());
        assert!(SlidingMedian::new(3).predict().is_none());
        assert!(Ewma::new(0.5).predict().is_none());
        assert!(AdaptiveEnsemble::standard().predict().is_none());
    }
}
