//! Scheduled fault injection for virtual-time simulations.
//!
//! A [`FaultPlan`] is a time-ordered schedule of [`FaultEvent`]s against
//! arbitrary targets (the monitor layer instantiates `T` with its daemons
//! and nodes). The simulation driver drains due events with
//! [`FaultPlan::due`] as virtual time advances and applies each
//! [`FaultAction`] to the target. The plan itself is pure data — fully
//! deterministic and replayable, like everything else in the simulator.

use crate::time::{Duration, SimTime};

/// What happens to the target when its fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The process dies. It stays dead until a supervisor relaunches it
    /// (state is lost across the relaunch, as for a freshly exec'd process).
    Kill,
    /// The process hangs: it stays nominally alive but does no work for the
    /// given duration, then resumes on its own — unless a supervisor
    /// restarts it first.
    Hang(Duration),
    /// The process keeps working but its outputs are withheld for the given
    /// duration (an NFS write stall, a full pipe): observers see stale data
    /// while internal state keeps advancing.
    Delay(Duration),
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent<T> {
    /// Virtual time the fault fires.
    pub at: SimTime,
    /// What the fault hits.
    pub target: T,
    /// What happens to it.
    pub action: FaultAction,
}

/// A deterministic, time-ordered schedule of faults.
///
/// ```
/// use nlrm_sim_core::fault::{FaultAction, FaultPlan};
/// use nlrm_sim_core::time::SimTime;
///
/// let mut plan: FaultPlan<&'static str> = FaultPlan::new();
/// plan.schedule(SimTime::from_secs(30), "latencyd", FaultAction::Kill);
/// plan.schedule(SimTime::from_secs(10), "nodestated", FaultAction::Kill);
/// let due = plan.due(SimTime::from_secs(20));
/// assert_eq!(due.len(), 1);
/// assert_eq!(due[0].target, "nodestated");
/// assert_eq!(plan.remaining(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan<T> {
    /// Pending events, ascending by time (stable for equal times).
    events: Vec<FaultEvent<T>>,
}

impl<T> FaultPlan<T> {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Add a fault at `at`. Events inserted for the same instant fire in
    /// insertion order.
    pub fn schedule(&mut self, at: SimTime, target: T, action: FaultAction) -> &mut Self {
        // insert before the first later event, keeping same-time order stable
        let pos = self.events.partition_point(|e| e.at <= at);
        self.events.insert(pos, FaultEvent { at, target, action });
        self
    }

    /// Remove and return every event with `at <= now`, in firing order.
    pub fn due(&mut self, now: SimTime) -> Vec<FaultEvent<T>> {
        let split = self.events.partition_point(|e| e.at <= now);
        self.events.drain(..split).collect()
    }

    /// The pending events, ascending by firing time.
    pub fn events(&self) -> &[FaultEvent<T>] {
        &self.events
    }

    /// Virtual time of the next pending event.
    pub fn next_at(&self) -> Option<SimTime> {
        self.events.first().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn remaining(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn due_drains_in_time_order() {
        let mut plan = FaultPlan::new();
        plan.schedule(t(30), 2u32, FaultAction::Kill)
            .schedule(t(10), 0, FaultAction::Kill)
            .schedule(t(20), 1, FaultAction::Hang(Duration::from_secs(5)));
        let due = plan.due(t(25));
        assert_eq!(due.iter().map(|e| e.target).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(plan.remaining(), 1);
        assert_eq!(plan.next_at(), Some(t(30)));
        assert_eq!(plan.due(t(9999)).len(), 1);
        assert!(plan.is_empty());
    }

    #[test]
    fn same_instant_fires_in_insertion_order() {
        let mut plan = FaultPlan::new();
        plan.schedule(t(5), "a", FaultAction::Kill)
            .schedule(t(5), "b", FaultAction::Kill)
            .schedule(t(5), "c", FaultAction::Kill);
        let due = plan.due(t(5));
        assert_eq!(
            due.iter().map(|e| e.target).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn nothing_due_before_first_event() {
        let mut plan = FaultPlan::new();
        plan.schedule(t(100), 0u8, FaultAction::Delay(Duration::from_secs(1)));
        assert!(plan.due(t(99)).is_empty());
        assert_eq!(plan.remaining(), 1);
    }
}
