//! Reproducible, independent random-number streams.
//!
//! Each simulated component (every node's load process, every link's traffic
//! process, each allocation policy, …) draws from its own named stream so
//! that adding or removing one consumer never perturbs the others. Streams
//! are derived from a master seed with SplitMix64, the standard seed-expansion
//! function.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent [`StdRng`] streams from a single master seed.
#[derive(Debug, Clone, Copy)]
pub struct RngFactory {
    master: u64,
}

/// One round of SplitMix64: a high-quality 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to turn stream names into integers.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl RngFactory {
    /// A factory rooted at `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        RngFactory {
            master: master_seed,
        }
    }

    /// The master seed this factory was created with.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// An RNG stream identified by a name and an index.
    ///
    /// `stream("node-load", 7)` is stable across runs and independent of
    /// `stream("node-load", 8)` and `stream("link-traffic", 7)`.
    pub fn stream(&self, name: &str, index: u64) -> StdRng {
        let h = fnv1a(name.as_bytes()) ^ splitmix64(index.wrapping_add(0x51ED_2701));
        let seed = splitmix64(self.master ^ h);
        // Expand the 64-bit seed to the 32 bytes StdRng wants.
        let mut bytes = [0u8; 32];
        let mut s = seed;
        for chunk in bytes.chunks_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        StdRng::from_seed(bytes)
    }

    /// Convenience: a stream with index 0.
    pub fn named(&self, name: &str) -> StdRng {
        self.stream(name, 0)
    }

    /// A child factory, for components that themselves own sub-streams.
    pub fn child(&self, name: &str) -> RngFactory {
        RngFactory {
            master: splitmix64(self.master ^ fnv1a(name.as_bytes())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn take5(mut rng: StdRng) -> Vec<u64> {
        (0..5).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_name_same_stream() {
        let f = RngFactory::new(42);
        assert_eq!(take5(f.stream("a", 1)), take5(f.stream("a", 1)));
    }

    #[test]
    fn different_names_differ() {
        let f = RngFactory::new(42);
        assert_ne!(take5(f.stream("a", 1)), take5(f.stream("b", 1)));
        assert_ne!(take5(f.stream("a", 1)), take5(f.stream("a", 2)));
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = RngFactory::new(1).stream("x", 0);
        let b = RngFactory::new(2).stream("x", 0);
        assert_ne!(take5(a), take5(b));
    }

    #[test]
    fn child_factories_are_independent() {
        let f = RngFactory::new(7);
        let c1 = f.child("cluster");
        let c2 = f.child("monitor");
        assert_ne!(take5(c1.named("s")), take5(c2.named("s")));
        // but reproducible
        assert_eq!(take5(f.child("cluster").named("s")), take5(c1.named("s")));
    }

    #[test]
    fn streams_look_uniform() {
        // crude sanity check: mean of u01 samples near 0.5
        let mut rng = RngFactory::new(3).named("uniform");
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
