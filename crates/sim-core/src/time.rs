//! Virtual time for the discrete-event simulator.
//!
//! Time is represented in integer **microseconds** so that [`SimTime`] is
//! totally ordered (usable as a heap key) and arithmetic is exact: replaying
//! a simulation never diverges due to floating-point accumulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of microseconds in one second.
const MICROS_PER_SEC: u64 = 1_000_000;

/// A point in virtual time, measured in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in microseconds. Always non-negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds. Panics on negative or NaN input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from raw microseconds.
    pub fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// This time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This time in raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Largest representable span; used as a "never" staleness bound.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub fn from_mins(mins: u64) -> Self {
        Duration::from_secs(mins * 60)
    }

    /// Construct from whole hours.
    pub fn from_hours(hours: u64) -> Self {
        Duration::from_secs(hours * 3600)
    }

    /// Construct from fractional seconds. Panics on negative or NaN input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Duration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from raw microseconds.
    pub fn from_micros(micros: u64) -> Self {
        Duration(micros)
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This span in raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// True when the span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply the span by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> Duration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid factor {factor}"
        );
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(Duration::from_mins(5).as_secs_f64(), 300.0);
        assert_eq!(Duration::from_hours(2).as_secs_f64(), 7200.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + Duration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(12), Duration::from_secs(3));
        // saturating subtraction
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            Duration::ZERO
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs_f64(0.5),
            SimTime::ZERO,
            SimTime::from_secs(3),
            SimTime::from_secs_f64(0.25),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[3], SimTime::from_secs(3));
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(Duration::from_secs(10).mul_f64(0.5), Duration::from_secs(5));
        assert_eq!(Duration::from_secs(1).mul_f64(0.0), Duration::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_time_panics() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
