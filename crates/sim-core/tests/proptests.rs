//! Property-based tests for the simulation core.

use nlrm_sim_core::event::EventQueue;
use nlrm_sim_core::stats::{median, percentile, OnlineStats, Summary};
use nlrm_sim_core::time::{Duration, SimTime};
use nlrm_sim_core::window::WindowedMean;
use proptest::prelude::*;

proptest! {
    /// The event queue is a stable priority queue: output sorted by time,
    /// FIFO within equal timestamps.
    #[test]
    fn event_queue_is_stable_sorted(times in proptest::collection::vec(0u64..100, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_secs(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort(); // sorts by time then insertion index
        let popped: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, i)| (t.as_micros() / 1_000_000, i))
            .collect();
        prop_assert_eq!(popped, expected);
    }

    /// Windowed mean equals the brute-force mean over retained samples.
    #[test]
    fn windowed_mean_matches_bruteforce(
        samples in proptest::collection::vec((0u64..2000, -100.0f64..100.0), 1..300),
        window in 1u64..500,
    ) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut w = WindowedMean::new(Duration::from_secs(window));
        for &(t, v) in &sorted {
            w.push(SimTime::from_secs(t), v);
        }
        let now = sorted.last().unwrap().0;
        let cutoff = now.saturating_sub(window);
        let kept: Vec<f64> = sorted
            .iter()
            .filter(|&&(t, _)| t >= cutoff)
            .map(|&(_, v)| v)
            .collect();
        let expect = kept.iter().sum::<f64>() / kept.len() as f64;
        prop_assert!((w.mean().unwrap() - expect).abs() < 1e-6);
    }

    /// Summary invariants: min ≤ median ≤ max, min ≤ mean ≤ max, std ≥ 0.
    #[test]
    fn summary_invariants(data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&data).unwrap();
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.n, data.len());
    }

    /// OnlineStats agrees with Summary.
    #[test]
    fn online_matches_batch(data in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
        let mut o = OnlineStats::new();
        for &x in &data {
            o.push(x);
        }
        let s = Summary::of(&data).unwrap();
        prop_assert!((o.mean() - s.mean).abs() < 1e-9);
        prop_assert!((o.std_dev() - s.std_dev).abs() < 1e-6);
        prop_assert_eq!(o.min(), s.min);
        prop_assert_eq!(o.max(), s.max);
    }

    /// Percentiles are monotone in p and bracket the data.
    #[test]
    fn percentiles_monotone(
        data in proptest::collection::vec(-1e3f64..1e3, 1..100),
        p1 in 0.0f64..=100.0,
        p2 in 0.0f64..=100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&data, lo);
        let b = percentile(&data, hi);
        prop_assert!(a <= b + 1e-9);
        // p50 equals the median up to floating-point association order
        prop_assert!((percentile(&data, 50.0) - median(&data)).abs() < 1e-9);
    }

    /// Time arithmetic: (t + d) − t == d and ordering is consistent.
    #[test]
    fn time_arithmetic(t in 0u64..u32::MAX as u64, d in 0u64..u32::MAX as u64) {
        let t0 = SimTime::from_micros(t);
        let dd = Duration::from_micros(d);
        prop_assert_eq!((t0 + dd) - t0, dd);
        prop_assert!(t0 + dd >= t0);
    }
}
