/root/repo/target/release/examples/monitor_cluster-814b3dc2d6ce2b31.d: examples/monitor_cluster.rs

/root/repo/target/release/examples/monitor_cluster-814b3dc2d6ce2b31: examples/monitor_cluster.rs

examples/monitor_cluster.rs:
