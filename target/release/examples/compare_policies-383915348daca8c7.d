/root/repo/target/release/examples/compare_policies-383915348daca8c7.d: examples/compare_policies.rs

/root/repo/target/release/examples/compare_policies-383915348daca8c7: examples/compare_policies.rs

examples/compare_policies.rs:
