/root/repo/target/release/examples/monitor_cluster-ba43af5e58c525dc.d: examples/monitor_cluster.rs

/root/repo/target/release/examples/monitor_cluster-ba43af5e58c525dc: examples/monitor_cluster.rs

examples/monitor_cluster.rs:
