/root/repo/target/release/examples/quickstart-824429c65fa3cf29.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-824429c65fa3cf29: examples/quickstart.rs

examples/quickstart.rs:
