/root/repo/target/release/deps/alloc_overhead-d9fcc16e8dae7561.d: crates/bench/benches/alloc_overhead.rs

/root/repo/target/release/deps/alloc_overhead-d9fcc16e8dae7561: crates/bench/benches/alloc_overhead.rs

crates/bench/benches/alloc_overhead.rs:
