/root/repo/target/release/deps/fig4_minimd-1833e6928f7c082f.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/release/deps/fig4_minimd-1833e6928f7c082f: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
