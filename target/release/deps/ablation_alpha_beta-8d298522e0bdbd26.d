/root/repo/target/release/deps/ablation_alpha_beta-8d298522e0bdbd26.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/release/deps/ablation_alpha_beta-8d298522e0bdbd26: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
