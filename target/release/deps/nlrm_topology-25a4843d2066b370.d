/root/repo/target/release/deps/nlrm_topology-25a4843d2066b370.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

/root/repo/target/release/deps/libnlrm_topology-25a4843d2066b370.rlib: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

/root/repo/target/release/deps/libnlrm_topology-25a4843d2066b370.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/route.rs:
