/root/repo/target/release/deps/nlrm_ctl-0d22fadbbcac575a.d: src/bin/nlrm-ctl.rs

/root/repo/target/release/deps/nlrm_ctl-0d22fadbbcac575a: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
