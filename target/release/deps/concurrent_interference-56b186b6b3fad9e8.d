/root/repo/target/release/deps/concurrent_interference-56b186b6b3fad9e8.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/release/deps/concurrent_interference-56b186b6b3fad9e8: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
