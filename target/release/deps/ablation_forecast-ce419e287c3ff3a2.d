/root/repo/target/release/deps/ablation_forecast-ce419e287c3ff3a2.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/release/deps/ablation_forecast-ce419e287c3ff3a2: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
