/root/repo/target/release/deps/nlrm_monitor-919c05f825951489.d: crates/monitor/src/lib.rs crates/monitor/src/central.rs crates/monitor/src/codec.rs crates/monitor/src/daemons.rs crates/monitor/src/forecast.rs crates/monitor/src/matrix.rs crates/monitor/src/rounds.rs crates/monitor/src/runtime.rs crates/monitor/src/sample.rs crates/monitor/src/snapshot.rs crates/monitor/src/store.rs crates/monitor/src/threaded.rs

/root/repo/target/release/deps/libnlrm_monitor-919c05f825951489.rlib: crates/monitor/src/lib.rs crates/monitor/src/central.rs crates/monitor/src/codec.rs crates/monitor/src/daemons.rs crates/monitor/src/forecast.rs crates/monitor/src/matrix.rs crates/monitor/src/rounds.rs crates/monitor/src/runtime.rs crates/monitor/src/sample.rs crates/monitor/src/snapshot.rs crates/monitor/src/store.rs crates/monitor/src/threaded.rs

/root/repo/target/release/deps/libnlrm_monitor-919c05f825951489.rmeta: crates/monitor/src/lib.rs crates/monitor/src/central.rs crates/monitor/src/codec.rs crates/monitor/src/daemons.rs crates/monitor/src/forecast.rs crates/monitor/src/matrix.rs crates/monitor/src/rounds.rs crates/monitor/src/runtime.rs crates/monitor/src/sample.rs crates/monitor/src/snapshot.rs crates/monitor/src/store.rs crates/monitor/src/threaded.rs

crates/monitor/src/lib.rs:
crates/monitor/src/central.rs:
crates/monitor/src/codec.rs:
crates/monitor/src/daemons.rs:
crates/monitor/src/forecast.rs:
crates/monitor/src/matrix.rs:
crates/monitor/src/rounds.rs:
crates/monitor/src/runtime.rs:
crates/monitor/src/sample.rs:
crates/monitor/src/snapshot.rs:
crates/monitor/src/store.rs:
crates/monitor/src/threaded.rs:
