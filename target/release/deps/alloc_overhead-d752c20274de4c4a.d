/root/repo/target/release/deps/alloc_overhead-d752c20274de4c4a.d: crates/bench/benches/alloc_overhead.rs

/root/repo/target/release/deps/alloc_overhead-d752c20274de4c4a: crates/bench/benches/alloc_overhead.rs

crates/bench/benches/alloc_overhead.rs:
