/root/repo/target/release/deps/ablation_alpha_beta-ef6a187b5b695f4a.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/release/deps/ablation_alpha_beta-ef6a187b5b695f4a: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
