/root/repo/target/release/deps/obs_report-247a773acee96fb8.d: crates/bench/src/bin/obs_report.rs

/root/repo/target/release/deps/obs_report-247a773acee96fb8: crates/bench/src/bin/obs_report.rs

crates/bench/src/bin/obs_report.rs:
