/root/repo/target/release/deps/ablation_forecast-66cf9d32bb372c76.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/release/deps/ablation_forecast-66cf9d32bb372c76: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
