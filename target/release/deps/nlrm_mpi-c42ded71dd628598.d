/root/repo/target/release/deps/nlrm_mpi-c42ded71dd628598.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/release/deps/libnlrm_mpi-c42ded71dd628598.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/release/deps/libnlrm_mpi-c42ded71dd628598.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/comm.rs:
crates/mpi/src/contention.rs:
crates/mpi/src/exec.rs:
crates/mpi/src/multi.rs:
crates/mpi/src/pattern.rs:
crates/mpi/src/profiler.rs:
