/root/repo/target/release/deps/heuristic_vs_optimal-9d17e97a117a9548.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/release/deps/heuristic_vs_optimal-9d17e97a117a9548: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
