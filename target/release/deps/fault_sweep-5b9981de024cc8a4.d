/root/repo/target/release/deps/fault_sweep-5b9981de024cc8a4.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-5b9981de024cc8a4: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
