/root/repo/target/release/deps/nlrm_mpi-3a012b909a4b77c1.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/release/deps/libnlrm_mpi-3a012b909a4b77c1.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/release/deps/libnlrm_mpi-3a012b909a4b77c1.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/comm.rs:
crates/mpi/src/contention.rs:
crates/mpi/src/exec.rs:
crates/mpi/src/multi.rs:
crates/mpi/src/pattern.rs:
crates/mpi/src/profiler.rs:
