/root/repo/target/release/deps/nlrm_bench-1b8ad6ed3ce46719.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libnlrm_bench-1b8ad6ed3ce46719.rlib: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libnlrm_bench-1b8ad6ed3ce46719.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
