/root/repo/target/release/deps/nlrm-72ebeecee5f248fa.d: src/lib.rs

/root/repo/target/release/deps/libnlrm-72ebeecee5f248fa.rlib: src/lib.rs

/root/repo/target/release/deps/libnlrm-72ebeecee5f248fa.rmeta: src/lib.rs

src/lib.rs:
