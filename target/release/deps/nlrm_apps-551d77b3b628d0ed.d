/root/repo/target/release/deps/nlrm_apps-551d77b3b628d0ed.d: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/release/deps/libnlrm_apps-551d77b3b628d0ed.rlib: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/release/deps/libnlrm_apps-551d77b3b628d0ed.rmeta: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/decomp.rs:
crates/apps/src/minife.rs:
crates/apps/src/minimd.rs:
crates/apps/src/synthetic.rs:
