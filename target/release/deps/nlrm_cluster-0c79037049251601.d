/root/repo/target/release/deps/nlrm_cluster-0c79037049251601.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libnlrm_cluster-0c79037049251601.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libnlrm_cluster-0c79037049251601.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/iitk.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/profiles.rs:
crates/cluster/src/trace.rs:
