/root/repo/target/release/deps/nlrm-f3f402f53e992945.d: src/lib.rs

/root/repo/target/release/deps/libnlrm-f3f402f53e992945.rlib: src/lib.rs

/root/repo/target/release/deps/libnlrm-f3f402f53e992945.rmeta: src/lib.rs

src/lib.rs:
