/root/repo/target/release/deps/concurrent_interference-505a777ddc5931bb.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/release/deps/concurrent_interference-505a777ddc5931bb: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
