/root/repo/target/release/deps/ablation_weights-ff98182d4c815d20.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/release/deps/ablation_weights-ff98182d4c815d20: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
