/root/repo/target/release/deps/fig6_minife-895e13fc34d9eaa5.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/release/deps/fig6_minife-895e13fc34d9eaa5: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
