/root/repo/target/release/deps/nlrm_ctl-de8ebd3d80eb1947.d: src/bin/nlrm-ctl.rs

/root/repo/target/release/deps/nlrm_ctl-de8ebd3d80eb1947: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
