/root/repo/target/release/deps/fault_sweep-1221c7bdd2d4946e.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-1221c7bdd2d4946e: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
