/root/repo/target/release/deps/fig2_bandwidth-117580f72ff774ab.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/release/deps/fig2_bandwidth-117580f72ff774ab: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
