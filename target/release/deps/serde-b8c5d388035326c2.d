/root/repo/target/release/deps/serde-b8c5d388035326c2.d: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b8c5d388035326c2.rlib: vendor/serde/src/lib.rs

/root/repo/target/release/deps/libserde-b8c5d388035326c2.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
