/root/repo/target/release/deps/obs_report-9510da4e882f3fd7.d: crates/bench/src/bin/obs_report.rs

/root/repo/target/release/deps/obs_report-9510da4e882f3fd7: crates/bench/src/bin/obs_report.rs

crates/bench/src/bin/obs_report.rs:
