/root/repo/target/release/deps/multi_job_broker-38e5a951919a4cee.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/release/deps/multi_job_broker-38e5a951919a4cee: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
