/root/repo/target/release/deps/nlrm_core-57100b214ea9ddf4.d: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/broker.rs crates/core/src/candidate.rs crates/core/src/groups.rs crates/core/src/loads.rs crates/core/src/policies.rs crates/core/src/request.rs crates/core/src/saw.rs crates/core/src/select.rs crates/core/src/slurm.rs crates/core/src/weights.rs

/root/repo/target/release/deps/libnlrm_core-57100b214ea9ddf4.rlib: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/broker.rs crates/core/src/candidate.rs crates/core/src/groups.rs crates/core/src/loads.rs crates/core/src/policies.rs crates/core/src/request.rs crates/core/src/saw.rs crates/core/src/select.rs crates/core/src/slurm.rs crates/core/src/weights.rs

/root/repo/target/release/deps/libnlrm_core-57100b214ea9ddf4.rmeta: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/broker.rs crates/core/src/candidate.rs crates/core/src/groups.rs crates/core/src/loads.rs crates/core/src/policies.rs crates/core/src/request.rs crates/core/src/saw.rs crates/core/src/select.rs crates/core/src/slurm.rs crates/core/src/weights.rs

crates/core/src/lib.rs:
crates/core/src/advisor.rs:
crates/core/src/broker.rs:
crates/core/src/candidate.rs:
crates/core/src/groups.rs:
crates/core/src/loads.rs:
crates/core/src/policies.rs:
crates/core/src/request.rs:
crates/core/src/saw.rs:
crates/core/src/select.rs:
crates/core/src/slurm.rs:
crates/core/src/weights.rs:
