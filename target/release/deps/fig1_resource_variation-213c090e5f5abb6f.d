/root/repo/target/release/deps/fig1_resource_variation-213c090e5f5abb6f.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/release/deps/fig1_resource_variation-213c090e5f5abb6f: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
