/root/repo/target/release/deps/multi_job_broker-efb0f8d370faa1ca.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/release/deps/multi_job_broker-efb0f8d370faa1ca: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
