/root/repo/target/release/deps/table4_fig7-ebbd3fe928f8111b.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/release/deps/table4_fig7-ebbd3fe928f8111b: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
