/root/repo/target/release/deps/fig2_bandwidth-a734b88e0b4cbf8c.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/release/deps/fig2_bandwidth-a734b88e0b4cbf8c: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
