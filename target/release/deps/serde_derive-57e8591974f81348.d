/root/repo/target/release/deps/serde_derive-57e8591974f81348.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-57e8591974f81348.so: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
