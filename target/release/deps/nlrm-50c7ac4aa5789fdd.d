/root/repo/target/release/deps/nlrm-50c7ac4aa5789fdd.d: src/lib.rs

/root/repo/target/release/deps/libnlrm-50c7ac4aa5789fdd.rlib: src/lib.rs

/root/repo/target/release/deps/libnlrm-50c7ac4aa5789fdd.rmeta: src/lib.rs

src/lib.rs:
