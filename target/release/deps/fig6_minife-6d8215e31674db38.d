/root/repo/target/release/deps/fig6_minife-6d8215e31674db38.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/release/deps/fig6_minife-6d8215e31674db38: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
