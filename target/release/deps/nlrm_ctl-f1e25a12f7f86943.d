/root/repo/target/release/deps/nlrm_ctl-f1e25a12f7f86943.d: src/bin/nlrm-ctl.rs

/root/repo/target/release/deps/nlrm_ctl-f1e25a12f7f86943: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
