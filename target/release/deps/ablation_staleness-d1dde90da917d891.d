/root/repo/target/release/deps/ablation_staleness-d1dde90da917d891.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/release/deps/ablation_staleness-d1dde90da917d891: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
