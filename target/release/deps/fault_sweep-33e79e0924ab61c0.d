/root/repo/target/release/deps/fault_sweep-33e79e0924ab61c0.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/release/deps/fault_sweep-33e79e0924ab61c0: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
