/root/repo/target/release/deps/nlrm_obs-6e0026ff24122bc6.d: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libnlrm_obs-6e0026ff24122bc6.rlib: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

/root/repo/target/release/deps/libnlrm_obs-6e0026ff24122bc6.rmeta: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/ctx.rs:
crates/obs/src/explain.rs:
crates/obs/src/journal.rs:
crates/obs/src/json.rs:
crates/obs/src/lock.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/span.rs:
