/root/repo/target/release/deps/fig1_resource_variation-2e9ba5acb89ebce7.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/release/deps/fig1_resource_variation-2e9ba5acb89ebce7: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
