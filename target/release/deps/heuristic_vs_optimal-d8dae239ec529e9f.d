/root/repo/target/release/deps/heuristic_vs_optimal-d8dae239ec529e9f.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/release/deps/heuristic_vs_optimal-d8dae239ec529e9f: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
