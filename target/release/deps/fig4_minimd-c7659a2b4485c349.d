/root/repo/target/release/deps/fig4_minimd-c7659a2b4485c349.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/release/deps/fig4_minimd-c7659a2b4485c349: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
