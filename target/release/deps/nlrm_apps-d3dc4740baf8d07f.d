/root/repo/target/release/deps/nlrm_apps-d3dc4740baf8d07f.d: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/release/deps/libnlrm_apps-d3dc4740baf8d07f.rlib: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/release/deps/libnlrm_apps-d3dc4740baf8d07f.rmeta: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/decomp.rs:
crates/apps/src/minife.rs:
crates/apps/src/minimd.rs:
crates/apps/src/synthetic.rs:
