/root/repo/target/release/deps/ablation_weights-0072640fd375dd33.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/release/deps/ablation_weights-0072640fd375dd33: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
