/root/repo/target/release/deps/trace_report-c41be0de3978bb77.d: crates/bench/src/bin/trace_report.rs

/root/repo/target/release/deps/trace_report-c41be0de3978bb77: crates/bench/src/bin/trace_report.rs

crates/bench/src/bin/trace_report.rs:
