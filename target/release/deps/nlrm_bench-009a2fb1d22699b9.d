/root/repo/target/release/deps/nlrm_bench-009a2fb1d22699b9.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libnlrm_bench-009a2fb1d22699b9.rlib: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/release/deps/libnlrm_bench-009a2fb1d22699b9.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
