/root/repo/target/release/deps/table4_fig7-228486cf8713a6ee.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/release/deps/table4_fig7-228486cf8713a6ee: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
