/root/repo/target/release/deps/nlrm_bench-79218330199233af.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

/root/repo/target/release/deps/libnlrm_bench-79218330199233af.rlib: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

/root/repo/target/release/deps/libnlrm_bench-79218330199233af.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/trace_scenario.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
