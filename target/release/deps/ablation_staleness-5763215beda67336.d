/root/repo/target/release/deps/ablation_staleness-5763215beda67336.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/release/deps/ablation_staleness-5763215beda67336: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
