(function() {
    const implementors = Object.fromEntries([["nlrm_obs",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"nlrm_obs/journal/enum.Severity.html\" title=\"enum nlrm_obs::journal::Severity\">Severity</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"nlrm_obs/span/struct.SpanId.html\" title=\"struct nlrm_obs::span::SpanId\">SpanId</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"struct\" href=\"nlrm_obs/span/struct.TraceId.html\" title=\"struct nlrm_obs::span::TraceId\">TraceId</a>",0]]],["nlrm_obs",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/hash/trait.Hash.html\" title=\"trait core::hash::Hash\">Hash</a> for <a class=\"enum\" href=\"nlrm_obs/journal/enum.Severity.html\" title=\"enum nlrm_obs::journal::Severity\">Severity</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[794,278]}