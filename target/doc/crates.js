window.ALL_CRATES = ["nlrm_obs"];
//{"start":21,"fragment_lengths":[10]}