createSrcSidebar('[["nlrm_obs",["",[],["ctx.rs","explain.rs","journal.rs","json.rs","lib.rs","metrics.rs","progress.rs"]]]]');
//{"start":19,"fragment_lengths":[103]}