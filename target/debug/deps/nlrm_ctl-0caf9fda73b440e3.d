/root/repo/target/debug/deps/nlrm_ctl-0caf9fda73b440e3.d: src/bin/nlrm-ctl.rs

/root/repo/target/debug/deps/nlrm_ctl-0caf9fda73b440e3: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
