/root/repo/target/debug/deps/fig6_minife-65324e14d56c716d.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/debug/deps/fig6_minife-65324e14d56c716d: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
