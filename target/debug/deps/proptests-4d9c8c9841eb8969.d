/root/repo/target/debug/deps/proptests-4d9c8c9841eb8969.d: crates/sim-core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-4d9c8c9841eb8969: crates/sim-core/tests/proptests.rs

crates/sim-core/tests/proptests.rs:
