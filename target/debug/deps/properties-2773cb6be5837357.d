/root/repo/target/debug/deps/properties-2773cb6be5837357.d: tests/properties.rs

/root/repo/target/debug/deps/properties-2773cb6be5837357: tests/properties.rs

tests/properties.rs:
