/root/repo/target/debug/deps/ablation_alpha_beta-68de0b55abc1505e.d: crates/bench/src/bin/ablation_alpha_beta.rs Cargo.toml

/root/repo/target/debug/deps/libablation_alpha_beta-68de0b55abc1505e.rmeta: crates/bench/src/bin/ablation_alpha_beta.rs Cargo.toml

crates/bench/src/bin/ablation_alpha_beta.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
