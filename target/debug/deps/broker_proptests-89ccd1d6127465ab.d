/root/repo/target/debug/deps/broker_proptests-89ccd1d6127465ab.d: crates/core/tests/broker_proptests.rs

/root/repo/target/debug/deps/broker_proptests-89ccd1d6127465ab: crates/core/tests/broker_proptests.rs

crates/core/tests/broker_proptests.rs:
