/root/repo/target/debug/deps/nlrm-675785fa51f5a495.d: src/lib.rs

/root/repo/target/debug/deps/nlrm-675785fa51f5a495: src/lib.rs

src/lib.rs:
