/root/repo/target/debug/deps/fig1_resource_variation-20ea11a425fc3358.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/debug/deps/fig1_resource_variation-20ea11a425fc3358: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
