/root/repo/target/debug/deps/concurrent_interference-929446d2cdbb16bb.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/debug/deps/concurrent_interference-929446d2cdbb16bb: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
