/root/repo/target/debug/deps/nlrm_sim_core-e92c40828daaa4a6.d: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/fault.rs crates/sim-core/src/forecast.rs crates/sim-core/src/process.rs crates/sim-core/src/rng.rs crates/sim-core/src/series.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_sim_core-e92c40828daaa4a6.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/fault.rs crates/sim-core/src/forecast.rs crates/sim-core/src/process.rs crates/sim-core/src/rng.rs crates/sim-core/src/series.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/window.rs Cargo.toml

crates/sim-core/src/lib.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/fault.rs:
crates/sim-core/src/forecast.rs:
crates/sim-core/src/process.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/series.rs:
crates/sim-core/src/stats.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
