/root/repo/target/debug/deps/ablation_forecast-85ad2e5ae034143a.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/debug/deps/ablation_forecast-85ad2e5ae034143a: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
