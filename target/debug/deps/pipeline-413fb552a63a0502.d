/root/repo/target/debug/deps/pipeline-413fb552a63a0502.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-413fb552a63a0502: tests/pipeline.rs

tests/pipeline.rs:
