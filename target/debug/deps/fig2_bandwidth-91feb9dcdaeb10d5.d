/root/repo/target/debug/deps/fig2_bandwidth-91feb9dcdaeb10d5.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/debug/deps/fig2_bandwidth-91feb9dcdaeb10d5: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
