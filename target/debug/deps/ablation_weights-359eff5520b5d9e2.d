/root/repo/target/debug/deps/ablation_weights-359eff5520b5d9e2.d: crates/bench/src/bin/ablation_weights.rs Cargo.toml

/root/repo/target/debug/deps/libablation_weights-359eff5520b5d9e2.rmeta: crates/bench/src/bin/ablation_weights.rs Cargo.toml

crates/bench/src/bin/ablation_weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
