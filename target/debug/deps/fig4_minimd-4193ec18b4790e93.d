/root/repo/target/debug/deps/fig4_minimd-4193ec18b4790e93.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/debug/deps/fig4_minimd-4193ec18b4790e93: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
