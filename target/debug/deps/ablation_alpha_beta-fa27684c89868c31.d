/root/repo/target/debug/deps/ablation_alpha_beta-fa27684c89868c31.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-fa27684c89868c31: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
