/root/repo/target/debug/deps/nlrm_cluster-1d4a3f6d81a9ed26.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libnlrm_cluster-1d4a3f6d81a9ed26.rlib: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libnlrm_cluster-1d4a3f6d81a9ed26.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/iitk.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/profiles.rs:
crates/cluster/src/trace.rs:
