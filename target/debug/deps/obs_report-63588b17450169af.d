/root/repo/target/debug/deps/obs_report-63588b17450169af.d: crates/bench/src/bin/obs_report.rs

/root/repo/target/debug/deps/obs_report-63588b17450169af: crates/bench/src/bin/obs_report.rs

crates/bench/src/bin/obs_report.rs:
