/root/repo/target/debug/deps/concurrent_interference-59d6c665f60f2d78.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/debug/deps/concurrent_interference-59d6c665f60f2d78: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
