/root/repo/target/debug/deps/ablation_alpha_beta-d338314fea2e1283.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-d338314fea2e1283: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
