/root/repo/target/debug/deps/ablation_alpha_beta-6c8d924e51acbe15.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-6c8d924e51acbe15: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
