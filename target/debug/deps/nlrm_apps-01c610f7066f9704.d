/root/repo/target/debug/deps/nlrm_apps-01c610f7066f9704.d: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/nlrm_apps-01c610f7066f9704: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/decomp.rs:
crates/apps/src/minife.rs:
crates/apps/src/minimd.rs:
crates/apps/src/synthetic.rs:
