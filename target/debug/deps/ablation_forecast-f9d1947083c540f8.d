/root/repo/target/debug/deps/ablation_forecast-f9d1947083c540f8.d: crates/bench/src/bin/ablation_forecast.rs Cargo.toml

/root/repo/target/debug/deps/libablation_forecast-f9d1947083c540f8.rmeta: crates/bench/src/bin/ablation_forecast.rs Cargo.toml

crates/bench/src/bin/ablation_forecast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
