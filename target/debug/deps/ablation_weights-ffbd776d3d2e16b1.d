/root/repo/target/debug/deps/ablation_weights-ffbd776d3d2e16b1.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-ffbd776d3d2e16b1: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
