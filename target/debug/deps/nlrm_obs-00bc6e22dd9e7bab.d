/root/repo/target/debug/deps/nlrm_obs-00bc6e22dd9e7bab.d: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libnlrm_obs-00bc6e22dd9e7bab.rlib: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libnlrm_obs-00bc6e22dd9e7bab.rmeta: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/ctx.rs:
crates/obs/src/explain.rs:
crates/obs/src/journal.rs:
crates/obs/src/json.rs:
crates/obs/src/lock.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/span.rs:
