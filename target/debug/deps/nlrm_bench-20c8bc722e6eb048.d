/root/repo/target/debug/deps/nlrm_bench-20c8bc722e6eb048.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/nlrm_bench-20c8bc722e6eb048: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
