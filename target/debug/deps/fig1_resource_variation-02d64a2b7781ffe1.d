/root/repo/target/debug/deps/fig1_resource_variation-02d64a2b7781ffe1.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/debug/deps/fig1_resource_variation-02d64a2b7781ffe1: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
