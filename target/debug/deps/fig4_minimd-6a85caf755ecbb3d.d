/root/repo/target/debug/deps/fig4_minimd-6a85caf755ecbb3d.d: crates/bench/src/bin/fig4_minimd.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_minimd-6a85caf755ecbb3d.rmeta: crates/bench/src/bin/fig4_minimd.rs Cargo.toml

crates/bench/src/bin/fig4_minimd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
