/root/repo/target/debug/deps/nlrm_ctl-7d9c013358565a9f.d: src/bin/nlrm-ctl.rs

/root/repo/target/debug/deps/nlrm_ctl-7d9c013358565a9f: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
