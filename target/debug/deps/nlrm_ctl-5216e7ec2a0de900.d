/root/repo/target/debug/deps/nlrm_ctl-5216e7ec2a0de900.d: src/bin/nlrm-ctl.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_ctl-5216e7ec2a0de900.rmeta: src/bin/nlrm-ctl.rs Cargo.toml

src/bin/nlrm-ctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
