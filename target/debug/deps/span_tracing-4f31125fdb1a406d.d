/root/repo/target/debug/deps/span_tracing-4f31125fdb1a406d.d: tests/span_tracing.rs

/root/repo/target/debug/deps/span_tracing-4f31125fdb1a406d: tests/span_tracing.rs

tests/span_tracing.rs:
