/root/repo/target/debug/deps/nlrm_mpi-d0148ecb22ef22db.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_mpi-d0148ecb22ef22db.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs Cargo.toml

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/comm.rs:
crates/mpi/src/contention.rs:
crates/mpi/src/exec.rs:
crates/mpi/src/multi.rs:
crates/mpi/src/pattern.rs:
crates/mpi/src/profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
