/root/repo/target/debug/deps/nlrm_apps-6e55d9d8f76dccfa.d: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_apps-6e55d9d8f76dccfa.rmeta: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/decomp.rs:
crates/apps/src/minife.rs:
crates/apps/src/minimd.rs:
crates/apps/src/synthetic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
