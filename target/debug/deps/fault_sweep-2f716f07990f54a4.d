/root/repo/target/debug/deps/fault_sweep-2f716f07990f54a4.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-2f716f07990f54a4: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
