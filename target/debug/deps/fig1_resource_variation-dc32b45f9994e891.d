/root/repo/target/debug/deps/fig1_resource_variation-dc32b45f9994e891.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/debug/deps/fig1_resource_variation-dc32b45f9994e891: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
