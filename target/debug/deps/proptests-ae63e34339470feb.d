/root/repo/target/debug/deps/proptests-ae63e34339470feb.d: crates/topology/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ae63e34339470feb: crates/topology/tests/proptests.rs

crates/topology/tests/proptests.rs:
