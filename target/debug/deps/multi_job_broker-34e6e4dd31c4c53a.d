/root/repo/target/debug/deps/multi_job_broker-34e6e4dd31c4c53a.d: crates/bench/src/bin/multi_job_broker.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_job_broker-34e6e4dd31c4c53a.rmeta: crates/bench/src/bin/multi_job_broker.rs Cargo.toml

crates/bench/src/bin/multi_job_broker.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
