/root/repo/target/debug/deps/proptests-7b12b91f8057d270.d: crates/mpi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7b12b91f8057d270: crates/mpi/tests/proptests.rs

crates/mpi/tests/proptests.rs:
