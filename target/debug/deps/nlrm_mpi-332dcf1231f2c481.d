/root/repo/target/debug/deps/nlrm_mpi-332dcf1231f2c481.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/debug/deps/nlrm_mpi-332dcf1231f2c481: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/comm.rs:
crates/mpi/src/contention.rs:
crates/mpi/src/exec.rs:
crates/mpi/src/multi.rs:
crates/mpi/src/pattern.rs:
crates/mpi/src/profiler.rs:
