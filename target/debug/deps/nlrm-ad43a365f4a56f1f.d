/root/repo/target/debug/deps/nlrm-ad43a365f4a56f1f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm-ad43a365f4a56f1f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
