/root/repo/target/debug/deps/concurrent_interference-282c8e45ef656b59.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/debug/deps/concurrent_interference-282c8e45ef656b59: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
