/root/repo/target/debug/deps/ablation_weights-a452daad2937375d.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-a452daad2937375d: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
