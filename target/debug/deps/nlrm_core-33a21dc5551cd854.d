/root/repo/target/debug/deps/nlrm_core-33a21dc5551cd854.d: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/broker.rs crates/core/src/candidate.rs crates/core/src/groups.rs crates/core/src/loads.rs crates/core/src/policies.rs crates/core/src/request.rs crates/core/src/saw.rs crates/core/src/select.rs crates/core/src/slurm.rs crates/core/src/weights.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_core-33a21dc5551cd854.rmeta: crates/core/src/lib.rs crates/core/src/advisor.rs crates/core/src/broker.rs crates/core/src/candidate.rs crates/core/src/groups.rs crates/core/src/loads.rs crates/core/src/policies.rs crates/core/src/request.rs crates/core/src/saw.rs crates/core/src/select.rs crates/core/src/slurm.rs crates/core/src/weights.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/advisor.rs:
crates/core/src/broker.rs:
crates/core/src/candidate.rs:
crates/core/src/groups.rs:
crates/core/src/loads.rs:
crates/core/src/policies.rs:
crates/core/src/request.rs:
crates/core/src/saw.rs:
crates/core/src/select.rs:
crates/core/src/slurm.rs:
crates/core/src/weights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
