/root/repo/target/debug/deps/ablation_staleness-61b7b84a9c86f49a.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-61b7b84a9c86f49a: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
