/root/repo/target/debug/deps/nlrm-f3cd655245e1cbc6.d: src/lib.rs

/root/repo/target/debug/deps/libnlrm-f3cd655245e1cbc6.rlib: src/lib.rs

/root/repo/target/debug/deps/libnlrm-f3cd655245e1cbc6.rmeta: src/lib.rs

src/lib.rs:
