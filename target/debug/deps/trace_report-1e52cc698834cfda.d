/root/repo/target/debug/deps/trace_report-1e52cc698834cfda.d: crates/bench/src/bin/trace_report.rs

/root/repo/target/debug/deps/trace_report-1e52cc698834cfda: crates/bench/src/bin/trace_report.rs

crates/bench/src/bin/trace_report.rs:
