/root/repo/target/debug/deps/fig6_minife-6ffac0d73fc34778.d: crates/bench/src/bin/fig6_minife.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_minife-6ffac0d73fc34778.rmeta: crates/bench/src/bin/fig6_minife.rs Cargo.toml

crates/bench/src/bin/fig6_minife.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
