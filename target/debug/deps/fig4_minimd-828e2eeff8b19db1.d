/root/repo/target/debug/deps/fig4_minimd-828e2eeff8b19db1.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/debug/deps/fig4_minimd-828e2eeff8b19db1: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
