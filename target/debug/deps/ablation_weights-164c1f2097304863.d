/root/repo/target/debug/deps/ablation_weights-164c1f2097304863.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-164c1f2097304863: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
