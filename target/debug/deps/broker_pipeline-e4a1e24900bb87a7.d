/root/repo/target/debug/deps/broker_pipeline-e4a1e24900bb87a7.d: tests/broker_pipeline.rs

/root/repo/target/debug/deps/broker_pipeline-e4a1e24900bb87a7: tests/broker_pipeline.rs

tests/broker_pipeline.rs:
