/root/repo/target/debug/deps/nlrm_bench-6e215f5ad98cdfa8.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_bench-6e215f5ad98cdfa8.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/trace_scenario.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
