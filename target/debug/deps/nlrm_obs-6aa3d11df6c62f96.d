/root/repo/target/debug/deps/nlrm_obs-6aa3d11df6c62f96.d: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_obs-6aa3d11df6c62f96.rmeta: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/ctx.rs:
crates/obs/src/explain.rs:
crates/obs/src/journal.rs:
crates/obs/src/json.rs:
crates/obs/src/lock.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
