/root/repo/target/debug/deps/fig2_bandwidth-eb87b45a3b849290.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/debug/deps/fig2_bandwidth-eb87b45a3b849290: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
