/root/repo/target/debug/deps/fig2_bandwidth-f4ff92d50db73c81.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/debug/deps/fig2_bandwidth-f4ff92d50db73c81: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
