/root/repo/target/debug/deps/ablation_alpha_beta-c5fd71ae7888b871.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-c5fd71ae7888b871: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
