/root/repo/target/debug/deps/policy_ordering-67b37d701d496766.d: tests/policy_ordering.rs

/root/repo/target/debug/deps/policy_ordering-67b37d701d496766: tests/policy_ordering.rs

tests/policy_ordering.rs:
