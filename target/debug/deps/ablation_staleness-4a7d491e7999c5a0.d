/root/repo/target/debug/deps/ablation_staleness-4a7d491e7999c5a0.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-4a7d491e7999c5a0: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
