/root/repo/target/debug/deps/nlrm_cluster-2c2454a09fc9af69.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/nlrm_cluster-2c2454a09fc9af69: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/iitk.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/profiles.rs:
crates/cluster/src/trace.rs:
