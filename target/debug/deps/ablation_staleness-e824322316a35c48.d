/root/repo/target/debug/deps/ablation_staleness-e824322316a35c48.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-e824322316a35c48: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
