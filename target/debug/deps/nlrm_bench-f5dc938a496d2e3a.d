/root/repo/target/debug/deps/nlrm_bench-f5dc938a496d2e3a.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libnlrm_bench-f5dc938a496d2e3a.rlib: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libnlrm_bench-f5dc938a496d2e3a.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
