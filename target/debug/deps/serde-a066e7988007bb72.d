/root/repo/target/debug/deps/serde-a066e7988007bb72.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a066e7988007bb72.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
