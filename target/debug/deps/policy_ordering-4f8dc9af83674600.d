/root/repo/target/debug/deps/policy_ordering-4f8dc9af83674600.d: tests/policy_ordering.rs

/root/repo/target/debug/deps/policy_ordering-4f8dc9af83674600: tests/policy_ordering.rs

tests/policy_ordering.rs:
