/root/repo/target/debug/deps/broker_pipeline-f76cf4d5ac9502c6.d: tests/broker_pipeline.rs

/root/repo/target/debug/deps/broker_pipeline-f76cf4d5ac9502c6: tests/broker_pipeline.rs

tests/broker_pipeline.rs:
