/root/repo/target/debug/deps/ablation_staleness-c8ffb0b3ad135ea2.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-c8ffb0b3ad135ea2: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
