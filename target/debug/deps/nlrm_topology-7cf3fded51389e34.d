/root/repo/target/debug/deps/nlrm_topology-7cf3fded51389e34.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

/root/repo/target/debug/deps/libnlrm_topology-7cf3fded51389e34.rlib: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

/root/repo/target/debug/deps/libnlrm_topology-7cf3fded51389e34.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/route.rs:
