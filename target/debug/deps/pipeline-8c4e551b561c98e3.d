/root/repo/target/debug/deps/pipeline-8c4e551b561c98e3.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-8c4e551b561c98e3: tests/pipeline.rs

tests/pipeline.rs:
