/root/repo/target/debug/deps/fig4_minimd-b10d720edee1cae8.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/debug/deps/fig4_minimd-b10d720edee1cae8: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
