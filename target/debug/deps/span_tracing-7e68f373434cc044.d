/root/repo/target/debug/deps/span_tracing-7e68f373434cc044.d: tests/span_tracing.rs Cargo.toml

/root/repo/target/debug/deps/libspan_tracing-7e68f373434cc044.rmeta: tests/span_tracing.rs Cargo.toml

tests/span_tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
