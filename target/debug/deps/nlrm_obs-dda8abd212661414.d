/root/repo/target/debug/deps/nlrm_obs-dda8abd212661414.d: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/nlrm_obs-dda8abd212661414: crates/obs/src/lib.rs crates/obs/src/ctx.rs crates/obs/src/explain.rs crates/obs/src/journal.rs crates/obs/src/json.rs crates/obs/src/lock.rs crates/obs/src/metrics.rs crates/obs/src/progress.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/ctx.rs:
crates/obs/src/explain.rs:
crates/obs/src/journal.rs:
crates/obs/src/json.rs:
crates/obs/src/lock.rs:
crates/obs/src/metrics.rs:
crates/obs/src/progress.rs:
crates/obs/src/span.rs:
