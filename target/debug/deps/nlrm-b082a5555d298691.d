/root/repo/target/debug/deps/nlrm-b082a5555d298691.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm-b082a5555d298691.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
