/root/repo/target/debug/deps/proptests-d4d085a058f7e3d2.d: crates/monitor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d4d085a058f7e3d2: crates/monitor/tests/proptests.rs

crates/monitor/tests/proptests.rs:
