/root/repo/target/debug/deps/nlrm_ctl-9f1807192ac85af0.d: src/bin/nlrm-ctl.rs

/root/repo/target/debug/deps/nlrm_ctl-9f1807192ac85af0: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
