/root/repo/target/debug/deps/properties-0ebe9d8c66da5764.d: tests/properties.rs

/root/repo/target/debug/deps/properties-0ebe9d8c66da5764: tests/properties.rs

tests/properties.rs:
