/root/repo/target/debug/deps/pipeline-b5dd2336477d7e6d.d: tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-b5dd2336477d7e6d: tests/pipeline.rs

tests/pipeline.rs:
