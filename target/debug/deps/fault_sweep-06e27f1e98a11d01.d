/root/repo/target/debug/deps/fault_sweep-06e27f1e98a11d01.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-06e27f1e98a11d01: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
