/root/repo/target/debug/deps/fig4_minimd-a0debdb6abbff45e.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/debug/deps/fig4_minimd-a0debdb6abbff45e: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
