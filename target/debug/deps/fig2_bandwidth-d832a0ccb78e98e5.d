/root/repo/target/debug/deps/fig2_bandwidth-d832a0ccb78e98e5.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/debug/deps/fig2_bandwidth-d832a0ccb78e98e5: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
