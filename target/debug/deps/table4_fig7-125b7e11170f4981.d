/root/repo/target/debug/deps/table4_fig7-125b7e11170f4981.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/debug/deps/table4_fig7-125b7e11170f4981: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
