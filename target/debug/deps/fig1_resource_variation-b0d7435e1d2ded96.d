/root/repo/target/debug/deps/fig1_resource_variation-b0d7435e1d2ded96.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/debug/deps/fig1_resource_variation-b0d7435e1d2ded96: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
