/root/repo/target/debug/deps/ablation_staleness-5e5b22aa37a92f92.d: crates/bench/src/bin/ablation_staleness.rs Cargo.toml

/root/repo/target/debug/deps/libablation_staleness-5e5b22aa37a92f92.rmeta: crates/bench/src/bin/ablation_staleness.rs Cargo.toml

crates/bench/src/bin/ablation_staleness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
