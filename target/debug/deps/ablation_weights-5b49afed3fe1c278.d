/root/repo/target/debug/deps/ablation_weights-5b49afed3fe1c278.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-5b49afed3fe1c278: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
