/root/repo/target/debug/deps/fig4_minimd-8123535e00ba241b.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/debug/deps/fig4_minimd-8123535e00ba241b: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
