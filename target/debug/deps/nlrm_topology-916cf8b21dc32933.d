/root/repo/target/debug/deps/nlrm_topology-916cf8b21dc32933.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

/root/repo/target/debug/deps/nlrm_topology-916cf8b21dc32933: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/route.rs:
