/root/repo/target/debug/deps/multi_job_broker-98204b0e58239988.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/debug/deps/multi_job_broker-98204b0e58239988: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
