/root/repo/target/debug/deps/fig6_minife-cd8457db0754e956.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/debug/deps/fig6_minife-cd8457db0754e956: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
