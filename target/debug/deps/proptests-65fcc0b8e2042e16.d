/root/repo/target/debug/deps/proptests-65fcc0b8e2042e16.d: crates/cluster/tests/proptests.rs

/root/repo/target/debug/deps/proptests-65fcc0b8e2042e16: crates/cluster/tests/proptests.rs

crates/cluster/tests/proptests.rs:
