/root/repo/target/debug/deps/fig1_resource_variation-98020b3554ae0900.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/debug/deps/fig1_resource_variation-98020b3554ae0900: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
