/root/repo/target/debug/deps/ablation_alpha_beta-8d409d8bee738065.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-8d409d8bee738065: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
