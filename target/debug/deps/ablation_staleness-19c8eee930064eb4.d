/root/repo/target/debug/deps/ablation_staleness-19c8eee930064eb4.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-19c8eee930064eb4: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
