/root/repo/target/debug/deps/heuristic_vs_optimal-9d9f66175a349a1e.d: crates/bench/src/bin/heuristic_vs_optimal.rs Cargo.toml

/root/repo/target/debug/deps/libheuristic_vs_optimal-9d9f66175a349a1e.rmeta: crates/bench/src/bin/heuristic_vs_optimal.rs Cargo.toml

crates/bench/src/bin/heuristic_vs_optimal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
