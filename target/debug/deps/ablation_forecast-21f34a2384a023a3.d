/root/repo/target/debug/deps/ablation_forecast-21f34a2384a023a3.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/debug/deps/ablation_forecast-21f34a2384a023a3: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
