/root/repo/target/debug/deps/nlrm_apps-22c4b3121d907bce.d: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/libnlrm_apps-22c4b3121d907bce.rlib: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/libnlrm_apps-22c4b3121d907bce.rmeta: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/decomp.rs:
crates/apps/src/minife.rs:
crates/apps/src/minimd.rs:
crates/apps/src/synthetic.rs:
