/root/repo/target/debug/deps/ablation_forecast-fc8f92f3ecce6424.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/debug/deps/ablation_forecast-fc8f92f3ecce6424: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
