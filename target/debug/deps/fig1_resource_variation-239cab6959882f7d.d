/root/repo/target/debug/deps/fig1_resource_variation-239cab6959882f7d.d: crates/bench/src/bin/fig1_resource_variation.rs

/root/repo/target/debug/deps/fig1_resource_variation-239cab6959882f7d: crates/bench/src/bin/fig1_resource_variation.rs

crates/bench/src/bin/fig1_resource_variation.rs:
