/root/repo/target/debug/deps/nlrm_sim_core-e605aa33fd7b4c90.d: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/fault.rs crates/sim-core/src/forecast.rs crates/sim-core/src/process.rs crates/sim-core/src/rng.rs crates/sim-core/src/series.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/window.rs

/root/repo/target/debug/deps/libnlrm_sim_core-e605aa33fd7b4c90.rmeta: crates/sim-core/src/lib.rs crates/sim-core/src/event.rs crates/sim-core/src/fault.rs crates/sim-core/src/forecast.rs crates/sim-core/src/process.rs crates/sim-core/src/rng.rs crates/sim-core/src/series.rs crates/sim-core/src/stats.rs crates/sim-core/src/time.rs crates/sim-core/src/window.rs

crates/sim-core/src/lib.rs:
crates/sim-core/src/event.rs:
crates/sim-core/src/fault.rs:
crates/sim-core/src/forecast.rs:
crates/sim-core/src/process.rs:
crates/sim-core/src/rng.rs:
crates/sim-core/src/series.rs:
crates/sim-core/src/stats.rs:
crates/sim-core/src/time.rs:
crates/sim-core/src/window.rs:
