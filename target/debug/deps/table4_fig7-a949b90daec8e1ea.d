/root/repo/target/debug/deps/table4_fig7-a949b90daec8e1ea.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/debug/deps/table4_fig7-a949b90daec8e1ea: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
