/root/repo/target/debug/deps/observability-d02aa275f605efcd.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-d02aa275f605efcd.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
