/root/repo/target/debug/deps/observability-a05b59625b41bba2.d: tests/observability.rs Cargo.toml

/root/repo/target/debug/deps/libobservability-a05b59625b41bba2.rmeta: tests/observability.rs Cargo.toml

tests/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
