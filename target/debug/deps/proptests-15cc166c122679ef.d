/root/repo/target/debug/deps/proptests-15cc166c122679ef.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-15cc166c122679ef: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
