/root/repo/target/debug/deps/multi_job_broker-e0908b9a8c3573b8.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/debug/deps/multi_job_broker-e0908b9a8c3573b8: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
