/root/repo/target/debug/deps/obs_report-2c3c797dd108f58c.d: crates/bench/src/bin/obs_report.rs

/root/repo/target/debug/deps/obs_report-2c3c797dd108f58c: crates/bench/src/bin/obs_report.rs

crates/bench/src/bin/obs_report.rs:
