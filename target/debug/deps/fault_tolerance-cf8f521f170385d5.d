/root/repo/target/debug/deps/fault_tolerance-cf8f521f170385d5.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-cf8f521f170385d5: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
