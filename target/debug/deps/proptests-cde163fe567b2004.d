/root/repo/target/debug/deps/proptests-cde163fe567b2004.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-cde163fe567b2004: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
