/root/repo/target/debug/deps/table4_fig7-fc139670f20b5f24.d: crates/bench/src/bin/table4_fig7.rs Cargo.toml

/root/repo/target/debug/deps/libtable4_fig7-fc139670f20b5f24.rmeta: crates/bench/src/bin/table4_fig7.rs Cargo.toml

crates/bench/src/bin/table4_fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
