/root/repo/target/debug/deps/table4_fig7-bd577e19348a015d.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/debug/deps/table4_fig7-bd577e19348a015d: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
