/root/repo/target/debug/deps/concurrent_interference-e5013fd7c4232847.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/debug/deps/concurrent_interference-e5013fd7c4232847: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
