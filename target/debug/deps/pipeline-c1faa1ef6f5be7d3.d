/root/repo/target/debug/deps/pipeline-c1faa1ef6f5be7d3.d: tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-c1faa1ef6f5be7d3.rmeta: tests/pipeline.rs Cargo.toml

tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
