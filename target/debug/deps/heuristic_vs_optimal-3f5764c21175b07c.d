/root/repo/target/debug/deps/heuristic_vs_optimal-3f5764c21175b07c.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/debug/deps/heuristic_vs_optimal-3f5764c21175b07c: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
