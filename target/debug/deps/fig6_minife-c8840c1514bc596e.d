/root/repo/target/debug/deps/fig6_minife-c8840c1514bc596e.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/debug/deps/fig6_minife-c8840c1514bc596e: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
