/root/repo/target/debug/deps/ablation_alpha_beta-bd953cf34b016765.d: crates/bench/src/bin/ablation_alpha_beta.rs

/root/repo/target/debug/deps/ablation_alpha_beta-bd953cf34b016765: crates/bench/src/bin/ablation_alpha_beta.rs

crates/bench/src/bin/ablation_alpha_beta.rs:
