/root/repo/target/debug/deps/heuristic_vs_optimal-8f41c140e207b9d1.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/debug/deps/heuristic_vs_optimal-8f41c140e207b9d1: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
