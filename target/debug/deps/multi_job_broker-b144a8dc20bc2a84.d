/root/repo/target/debug/deps/multi_job_broker-b144a8dc20bc2a84.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/debug/deps/multi_job_broker-b144a8dc20bc2a84: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
