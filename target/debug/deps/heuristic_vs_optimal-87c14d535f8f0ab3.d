/root/repo/target/debug/deps/heuristic_vs_optimal-87c14d535f8f0ab3.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/debug/deps/heuristic_vs_optimal-87c14d535f8f0ab3: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
