/root/repo/target/debug/deps/nlrm-46f50f40c75017fb.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm-46f50f40c75017fb.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
