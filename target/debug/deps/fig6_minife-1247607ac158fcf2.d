/root/repo/target/debug/deps/fig6_minife-1247607ac158fcf2.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/debug/deps/fig6_minife-1247607ac158fcf2: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
