/root/repo/target/debug/deps/concurrent_interference-317115e44cdede22.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/debug/deps/concurrent_interference-317115e44cdede22: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
