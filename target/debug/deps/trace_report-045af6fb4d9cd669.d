/root/repo/target/debug/deps/trace_report-045af6fb4d9cd669.d: crates/bench/src/bin/trace_report.rs

/root/repo/target/debug/deps/trace_report-045af6fb4d9cd669: crates/bench/src/bin/trace_report.rs

crates/bench/src/bin/trace_report.rs:
