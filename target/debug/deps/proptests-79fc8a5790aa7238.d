/root/repo/target/debug/deps/proptests-79fc8a5790aa7238.d: crates/apps/tests/proptests.rs

/root/repo/target/debug/deps/proptests-79fc8a5790aa7238: crates/apps/tests/proptests.rs

crates/apps/tests/proptests.rs:
