/root/repo/target/debug/deps/proptests-d7f79e085b8f1939.d: crates/apps/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d7f79e085b8f1939: crates/apps/tests/proptests.rs

crates/apps/tests/proptests.rs:
