/root/repo/target/debug/deps/observability-ad88274692f6ed6a.d: tests/observability.rs

/root/repo/target/debug/deps/observability-ad88274692f6ed6a: tests/observability.rs

tests/observability.rs:
