/root/repo/target/debug/deps/proptests-325691f7938dcfe1.d: crates/monitor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-325691f7938dcfe1: crates/monitor/tests/proptests.rs

crates/monitor/tests/proptests.rs:
