/root/repo/target/debug/deps/nlrm_cluster-f90087110672d2ab.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_cluster-f90087110672d2ab.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/iitk.rs crates/cluster/src/network.rs crates/cluster/src/node.rs crates/cluster/src/profiles.rs crates/cluster/src/trace.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/iitk.rs:
crates/cluster/src/network.rs:
crates/cluster/src/node.rs:
crates/cluster/src/profiles.rs:
crates/cluster/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
