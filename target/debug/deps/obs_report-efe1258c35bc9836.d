/root/repo/target/debug/deps/obs_report-efe1258c35bc9836.d: crates/bench/src/bin/obs_report.rs

/root/repo/target/debug/deps/obs_report-efe1258c35bc9836: crates/bench/src/bin/obs_report.rs

crates/bench/src/bin/obs_report.rs:
