/root/repo/target/debug/deps/policy_ordering-8fed087d88c7921b.d: tests/policy_ordering.rs

/root/repo/target/debug/deps/policy_ordering-8fed087d88c7921b: tests/policy_ordering.rs

tests/policy_ordering.rs:
