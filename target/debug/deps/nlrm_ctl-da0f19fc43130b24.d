/root/repo/target/debug/deps/nlrm_ctl-da0f19fc43130b24.d: src/bin/nlrm-ctl.rs

/root/repo/target/debug/deps/nlrm_ctl-da0f19fc43130b24: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
