/root/repo/target/debug/deps/properties-af4d93ed5652c7f9.d: crates/obs/tests/properties.rs

/root/repo/target/debug/deps/properties-af4d93ed5652c7f9: crates/obs/tests/properties.rs

crates/obs/tests/properties.rs:
