/root/repo/target/debug/deps/multi_job_broker-2fe29cd5fc067f71.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/debug/deps/multi_job_broker-2fe29cd5fc067f71: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
