/root/repo/target/debug/deps/nlrm_topology-b525f7c38526b538.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

/root/repo/target/debug/deps/libnlrm_topology-b525f7c38526b538.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/route.rs:
