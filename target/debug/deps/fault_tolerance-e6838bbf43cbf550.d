/root/repo/target/debug/deps/fault_tolerance-e6838bbf43cbf550.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-e6838bbf43cbf550: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
