/root/repo/target/debug/deps/nlrm_ctl-505995df2bd30467.d: src/bin/nlrm-ctl.rs

/root/repo/target/debug/deps/nlrm_ctl-505995df2bd30467: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
