/root/repo/target/debug/deps/broker_pipeline-302bb80272e16a75.d: tests/broker_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libbroker_pipeline-302bb80272e16a75.rmeta: tests/broker_pipeline.rs Cargo.toml

tests/broker_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
