/root/repo/target/debug/deps/concurrent_interference-df8ffa3a2bceb0fa.d: crates/bench/src/bin/concurrent_interference.rs

/root/repo/target/debug/deps/concurrent_interference-df8ffa3a2bceb0fa: crates/bench/src/bin/concurrent_interference.rs

crates/bench/src/bin/concurrent_interference.rs:
