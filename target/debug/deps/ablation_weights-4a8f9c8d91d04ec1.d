/root/repo/target/debug/deps/ablation_weights-4a8f9c8d91d04ec1.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-4a8f9c8d91d04ec1: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
