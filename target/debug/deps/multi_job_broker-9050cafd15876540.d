/root/repo/target/debug/deps/multi_job_broker-9050cafd15876540.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/debug/deps/multi_job_broker-9050cafd15876540: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
