/root/repo/target/debug/deps/ablation_forecast-05bfcf51e54d7b12.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/debug/deps/ablation_forecast-05bfcf51e54d7b12: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
