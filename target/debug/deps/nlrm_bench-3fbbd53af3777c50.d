/root/repo/target/debug/deps/nlrm_bench-3fbbd53af3777c50.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

/root/repo/target/debug/deps/libnlrm_bench-3fbbd53af3777c50.rlib: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

/root/repo/target/debug/deps/libnlrm_bench-3fbbd53af3777c50.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/trace_scenario.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
