/root/repo/target/debug/deps/fig1_resource_variation-6ffd1085d482ae7d.d: crates/bench/src/bin/fig1_resource_variation.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_resource_variation-6ffd1085d482ae7d.rmeta: crates/bench/src/bin/fig1_resource_variation.rs Cargo.toml

crates/bench/src/bin/fig1_resource_variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
