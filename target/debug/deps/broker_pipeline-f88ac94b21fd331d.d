/root/repo/target/debug/deps/broker_pipeline-f88ac94b21fd331d.d: tests/broker_pipeline.rs

/root/repo/target/debug/deps/broker_pipeline-f88ac94b21fd331d: tests/broker_pipeline.rs

tests/broker_pipeline.rs:
