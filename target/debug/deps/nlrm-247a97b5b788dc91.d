/root/repo/target/debug/deps/nlrm-247a97b5b788dc91.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm-247a97b5b788dc91.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
