/root/repo/target/debug/deps/nlrm_apps-811518b5ff02e4d8.d: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/libnlrm_apps-811518b5ff02e4d8.rlib: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

/root/repo/target/debug/deps/libnlrm_apps-811518b5ff02e4d8.rmeta: crates/apps/src/lib.rs crates/apps/src/decomp.rs crates/apps/src/minife.rs crates/apps/src/minimd.rs crates/apps/src/synthetic.rs

crates/apps/src/lib.rs:
crates/apps/src/decomp.rs:
crates/apps/src/minife.rs:
crates/apps/src/minimd.rs:
crates/apps/src/synthetic.rs:
