/root/repo/target/debug/deps/fig6_minife-ce03daef3946e86d.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/debug/deps/fig6_minife-ce03daef3946e86d: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
