/root/repo/target/debug/deps/nlrm_monitor-1087e4e1bd9ba1ec.d: crates/monitor/src/lib.rs crates/monitor/src/central.rs crates/monitor/src/codec.rs crates/monitor/src/daemons.rs crates/monitor/src/forecast.rs crates/monitor/src/matrix.rs crates/monitor/src/rounds.rs crates/monitor/src/runtime.rs crates/monitor/src/sample.rs crates/monitor/src/snapshot.rs crates/monitor/src/store.rs crates/monitor/src/threaded.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_monitor-1087e4e1bd9ba1ec.rmeta: crates/monitor/src/lib.rs crates/monitor/src/central.rs crates/monitor/src/codec.rs crates/monitor/src/daemons.rs crates/monitor/src/forecast.rs crates/monitor/src/matrix.rs crates/monitor/src/rounds.rs crates/monitor/src/runtime.rs crates/monitor/src/sample.rs crates/monitor/src/snapshot.rs crates/monitor/src/store.rs crates/monitor/src/threaded.rs Cargo.toml

crates/monitor/src/lib.rs:
crates/monitor/src/central.rs:
crates/monitor/src/codec.rs:
crates/monitor/src/daemons.rs:
crates/monitor/src/forecast.rs:
crates/monitor/src/matrix.rs:
crates/monitor/src/rounds.rs:
crates/monitor/src/runtime.rs:
crates/monitor/src/sample.rs:
crates/monitor/src/snapshot.rs:
crates/monitor/src/store.rs:
crates/monitor/src/threaded.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
