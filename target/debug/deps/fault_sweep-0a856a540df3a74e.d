/root/repo/target/debug/deps/fault_sweep-0a856a540df3a74e.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-0a856a540df3a74e: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
