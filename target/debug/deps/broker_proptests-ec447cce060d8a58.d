/root/repo/target/debug/deps/broker_proptests-ec447cce060d8a58.d: crates/core/tests/broker_proptests.rs

/root/repo/target/debug/deps/broker_proptests-ec447cce060d8a58: crates/core/tests/broker_proptests.rs

crates/core/tests/broker_proptests.rs:
