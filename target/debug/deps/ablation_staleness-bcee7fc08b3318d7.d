/root/repo/target/debug/deps/ablation_staleness-bcee7fc08b3318d7.d: crates/bench/src/bin/ablation_staleness.rs

/root/repo/target/debug/deps/ablation_staleness-bcee7fc08b3318d7: crates/bench/src/bin/ablation_staleness.rs

crates/bench/src/bin/ablation_staleness.rs:
