/root/repo/target/debug/deps/ablation_weights-81ff7dfb55bd10f0.d: crates/bench/src/bin/ablation_weights.rs

/root/repo/target/debug/deps/ablation_weights-81ff7dfb55bd10f0: crates/bench/src/bin/ablation_weights.rs

crates/bench/src/bin/ablation_weights.rs:
