/root/repo/target/debug/deps/nlrm-7510d59502f2324d.d: src/lib.rs

/root/repo/target/debug/deps/nlrm-7510d59502f2324d: src/lib.rs

src/lib.rs:
