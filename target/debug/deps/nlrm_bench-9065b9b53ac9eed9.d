/root/repo/target/debug/deps/nlrm_bench-9065b9b53ac9eed9.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_bench-9065b9b53ac9eed9.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
