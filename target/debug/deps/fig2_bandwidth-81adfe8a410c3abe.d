/root/repo/target/debug/deps/fig2_bandwidth-81adfe8a410c3abe.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/debug/deps/fig2_bandwidth-81adfe8a410c3abe: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
