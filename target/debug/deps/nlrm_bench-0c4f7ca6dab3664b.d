/root/repo/target/debug/deps/nlrm_bench-0c4f7ca6dab3664b.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

/root/repo/target/debug/deps/nlrm_bench-0c4f7ca6dab3664b: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs crates/bench/src/trace_scenario.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:
crates/bench/src/trace_scenario.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
