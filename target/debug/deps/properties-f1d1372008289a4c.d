/root/repo/target/debug/deps/properties-f1d1372008289a4c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f1d1372008289a4c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
