/root/repo/target/debug/deps/heuristic_vs_optimal-05aaa664a3e20ef2.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/debug/deps/heuristic_vs_optimal-05aaa664a3e20ef2: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
