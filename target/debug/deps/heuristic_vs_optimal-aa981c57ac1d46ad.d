/root/repo/target/debug/deps/heuristic_vs_optimal-aa981c57ac1d46ad.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/debug/deps/heuristic_vs_optimal-aa981c57ac1d46ad: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
