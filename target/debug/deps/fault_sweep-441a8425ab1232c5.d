/root/repo/target/debug/deps/fault_sweep-441a8425ab1232c5.d: crates/bench/src/bin/fault_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfault_sweep-441a8425ab1232c5.rmeta: crates/bench/src/bin/fault_sweep.rs Cargo.toml

crates/bench/src/bin/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
