/root/repo/target/debug/deps/fault_sweep-c62ea6e9d0549f93.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-c62ea6e9d0549f93: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
