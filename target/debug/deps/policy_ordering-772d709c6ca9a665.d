/root/repo/target/debug/deps/policy_ordering-772d709c6ca9a665.d: tests/policy_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_ordering-772d709c6ca9a665.rmeta: tests/policy_ordering.rs Cargo.toml

tests/policy_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
