/root/repo/target/debug/deps/nlrm-7ebd70dc26ca52e7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm-7ebd70dc26ca52e7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
