/root/repo/target/debug/deps/fault_tolerance-841085108d2ad337.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-841085108d2ad337: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
