/root/repo/target/debug/deps/ablation_forecast-948729066a41acc0.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/debug/deps/ablation_forecast-948729066a41acc0: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
