/root/repo/target/debug/deps/ablation_forecast-e1bf8f9baceee3e5.d: crates/bench/src/bin/ablation_forecast.rs

/root/repo/target/debug/deps/ablation_forecast-e1bf8f9baceee3e5: crates/bench/src/bin/ablation_forecast.rs

crates/bench/src/bin/ablation_forecast.rs:
