/root/repo/target/debug/deps/nlrm_mpi-a9603037e30ac43b.d: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/debug/deps/libnlrm_mpi-a9603037e30ac43b.rlib: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

/root/repo/target/debug/deps/libnlrm_mpi-a9603037e30ac43b.rmeta: crates/mpi/src/lib.rs crates/mpi/src/collectives.rs crates/mpi/src/comm.rs crates/mpi/src/contention.rs crates/mpi/src/exec.rs crates/mpi/src/multi.rs crates/mpi/src/pattern.rs crates/mpi/src/profiler.rs

crates/mpi/src/lib.rs:
crates/mpi/src/collectives.rs:
crates/mpi/src/comm.rs:
crates/mpi/src/contention.rs:
crates/mpi/src/exec.rs:
crates/mpi/src/multi.rs:
crates/mpi/src/pattern.rs:
crates/mpi/src/profiler.rs:
