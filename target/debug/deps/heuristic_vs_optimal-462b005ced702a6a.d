/root/repo/target/debug/deps/heuristic_vs_optimal-462b005ced702a6a.d: crates/bench/src/bin/heuristic_vs_optimal.rs

/root/repo/target/debug/deps/heuristic_vs_optimal-462b005ced702a6a: crates/bench/src/bin/heuristic_vs_optimal.rs

crates/bench/src/bin/heuristic_vs_optimal.rs:
