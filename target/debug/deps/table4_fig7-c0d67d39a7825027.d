/root/repo/target/debug/deps/table4_fig7-c0d67d39a7825027.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/debug/deps/table4_fig7-c0d67d39a7825027: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
