/root/repo/target/debug/deps/nlrm_ctl-012ae5d9aa04d5d8.d: src/bin/nlrm-ctl.rs

/root/repo/target/debug/deps/nlrm_ctl-012ae5d9aa04d5d8: src/bin/nlrm-ctl.rs

src/bin/nlrm-ctl.rs:
