/root/repo/target/debug/deps/properties-0e19a529602c1b46.d: tests/properties.rs

/root/repo/target/debug/deps/properties-0e19a529602c1b46: tests/properties.rs

tests/properties.rs:
