/root/repo/target/debug/deps/fig4_minimd-4c2531e307e1f68f.d: crates/bench/src/bin/fig4_minimd.rs

/root/repo/target/debug/deps/fig4_minimd-4c2531e307e1f68f: crates/bench/src/bin/fig4_minimd.rs

crates/bench/src/bin/fig4_minimd.rs:
