/root/repo/target/debug/deps/properties-fa71008546da238a.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-fa71008546da238a.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
