/root/repo/target/debug/deps/nlrm-e3e6ce7c75f91474.d: src/lib.rs

/root/repo/target/debug/deps/libnlrm-e3e6ce7c75f91474.rlib: src/lib.rs

/root/repo/target/debug/deps/libnlrm-e3e6ce7c75f91474.rmeta: src/lib.rs

src/lib.rs:
