/root/repo/target/debug/deps/fig6_minife-167de6a12de55db9.d: crates/bench/src/bin/fig6_minife.rs

/root/repo/target/debug/deps/fig6_minife-167de6a12de55db9: crates/bench/src/bin/fig6_minife.rs

crates/bench/src/bin/fig6_minife.rs:
