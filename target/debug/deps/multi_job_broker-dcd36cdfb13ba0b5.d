/root/repo/target/debug/deps/multi_job_broker-dcd36cdfb13ba0b5.d: crates/bench/src/bin/multi_job_broker.rs

/root/repo/target/debug/deps/multi_job_broker-dcd36cdfb13ba0b5: crates/bench/src/bin/multi_job_broker.rs

crates/bench/src/bin/multi_job_broker.rs:
