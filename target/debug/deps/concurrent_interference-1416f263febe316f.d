/root/repo/target/debug/deps/concurrent_interference-1416f263febe316f.d: crates/bench/src/bin/concurrent_interference.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrent_interference-1416f263febe316f.rmeta: crates/bench/src/bin/concurrent_interference.rs Cargo.toml

crates/bench/src/bin/concurrent_interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
