/root/repo/target/debug/deps/table4_fig7-db4aea431c390ecf.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/debug/deps/table4_fig7-db4aea431c390ecf: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
