/root/repo/target/debug/deps/nlrm-b1e8c4b913e78104.d: src/lib.rs

/root/repo/target/debug/deps/libnlrm-b1e8c4b913e78104.rlib: src/lib.rs

/root/repo/target/debug/deps/libnlrm-b1e8c4b913e78104.rmeta: src/lib.rs

src/lib.rs:
