/root/repo/target/debug/deps/table4_fig7-21a710bdd6d1ffa8.d: crates/bench/src/bin/table4_fig7.rs

/root/repo/target/debug/deps/table4_fig7-21a710bdd6d1ffa8: crates/bench/src/bin/table4_fig7.rs

crates/bench/src/bin/table4_fig7.rs:
