/root/repo/target/debug/deps/fig2_bandwidth-27294fc1097d09ab.d: crates/bench/src/bin/fig2_bandwidth.rs

/root/repo/target/debug/deps/fig2_bandwidth-27294fc1097d09ab: crates/bench/src/bin/fig2_bandwidth.rs

crates/bench/src/bin/fig2_bandwidth.rs:
