/root/repo/target/debug/deps/fig2_bandwidth-28de771281f28edf.d: crates/bench/src/bin/fig2_bandwidth.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_bandwidth-28de771281f28edf.rmeta: crates/bench/src/bin/fig2_bandwidth.rs Cargo.toml

crates/bench/src/bin/fig2_bandwidth.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
