/root/repo/target/debug/deps/fault_sweep-fa995ef9307c1b94.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-fa995ef9307c1b94: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
