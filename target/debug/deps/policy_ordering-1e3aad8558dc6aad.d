/root/repo/target/debug/deps/policy_ordering-1e3aad8558dc6aad.d: tests/policy_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libpolicy_ordering-1e3aad8558dc6aad.rmeta: tests/policy_ordering.rs Cargo.toml

tests/policy_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
