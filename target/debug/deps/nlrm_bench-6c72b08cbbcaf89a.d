/root/repo/target/debug/deps/nlrm_bench-6c72b08cbbcaf89a.d: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libnlrm_bench-6c72b08cbbcaf89a.rlib: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

/root/repo/target/debug/deps/libnlrm_bench-6c72b08cbbcaf89a.rmeta: crates/bench/src/lib.rs crates/bench/src/gains.rs crates/bench/src/heatmap.rs crates/bench/src/obs_scenario.rs crates/bench/src/plot.rs crates/bench/src/report.rs crates/bench/src/runner.rs

crates/bench/src/lib.rs:
crates/bench/src/gains.rs:
crates/bench/src/heatmap.rs:
crates/bench/src/obs_scenario.rs:
crates/bench/src/plot.rs:
crates/bench/src/report.rs:
crates/bench/src/runner.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
