/root/repo/target/debug/deps/fault_sweep-31d460d09c22860c.d: crates/bench/src/bin/fault_sweep.rs

/root/repo/target/debug/deps/fault_sweep-31d460d09c22860c: crates/bench/src/bin/fault_sweep.rs

crates/bench/src/bin/fault_sweep.rs:
