/root/repo/target/debug/deps/observability-1deabdb9977d22da.d: tests/observability.rs

/root/repo/target/debug/deps/observability-1deabdb9977d22da: tests/observability.rs

tests/observability.rs:
