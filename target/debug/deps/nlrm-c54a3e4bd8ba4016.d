/root/repo/target/debug/deps/nlrm-c54a3e4bd8ba4016.d: src/lib.rs

/root/repo/target/debug/deps/nlrm-c54a3e4bd8ba4016: src/lib.rs

src/lib.rs:
