/root/repo/target/debug/deps/obs_report-bd6bb39522914f5f.d: crates/bench/src/bin/obs_report.rs

/root/repo/target/debug/deps/obs_report-bd6bb39522914f5f: crates/bench/src/bin/obs_report.rs

crates/bench/src/bin/obs_report.rs:
