/root/repo/target/debug/deps/nlrm_topology-53a5a7e6a9fd84a4.d: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs Cargo.toml

/root/repo/target/debug/deps/libnlrm_topology-53a5a7e6a9fd84a4.rmeta: crates/topology/src/lib.rs crates/topology/src/graph.rs crates/topology/src/route.rs Cargo.toml

crates/topology/src/lib.rs:
crates/topology/src/graph.rs:
crates/topology/src/route.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
