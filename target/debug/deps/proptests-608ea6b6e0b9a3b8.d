/root/repo/target/debug/deps/proptests-608ea6b6e0b9a3b8.d: crates/mpi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-608ea6b6e0b9a3b8: crates/mpi/tests/proptests.rs

crates/mpi/tests/proptests.rs:
