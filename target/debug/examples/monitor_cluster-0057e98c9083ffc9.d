/root/repo/target/debug/examples/monitor_cluster-0057e98c9083ffc9.d: examples/monitor_cluster.rs

/root/repo/target/debug/examples/monitor_cluster-0057e98c9083ffc9: examples/monitor_cluster.rs

examples/monitor_cluster.rs:
