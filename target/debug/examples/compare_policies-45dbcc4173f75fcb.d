/root/repo/target/debug/examples/compare_policies-45dbcc4173f75fcb.d: examples/compare_policies.rs

/root/repo/target/debug/examples/compare_policies-45dbcc4173f75fcb: examples/compare_policies.rs

examples/compare_policies.rs:
