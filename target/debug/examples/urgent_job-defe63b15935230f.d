/root/repo/target/debug/examples/urgent_job-defe63b15935230f.d: examples/urgent_job.rs Cargo.toml

/root/repo/target/debug/examples/liburgent_job-defe63b15935230f.rmeta: examples/urgent_job.rs Cargo.toml

examples/urgent_job.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
