/root/repo/target/debug/examples/compare_policies-9046bc73420c1c71.d: examples/compare_policies.rs

/root/repo/target/debug/examples/compare_policies-9046bc73420c1c71: examples/compare_policies.rs

examples/compare_policies.rs:
