/root/repo/target/debug/examples/compare_policies-ccff716775212b12.d: examples/compare_policies.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_policies-ccff716775212b12.rmeta: examples/compare_policies.rs Cargo.toml

examples/compare_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
