/root/repo/target/debug/examples/compare_policies-5e71d0660f51acf1.d: examples/compare_policies.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_policies-5e71d0660f51acf1.rmeta: examples/compare_policies.rs Cargo.toml

examples/compare_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
