/root/repo/target/debug/examples/monitor_cluster-34995f0c805b9c9f.d: examples/monitor_cluster.rs

/root/repo/target/debug/examples/monitor_cluster-34995f0c805b9c9f: examples/monitor_cluster.rs

examples/monitor_cluster.rs:
