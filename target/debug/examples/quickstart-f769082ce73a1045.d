/root/repo/target/debug/examples/quickstart-f769082ce73a1045.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f769082ce73a1045: examples/quickstart.rs

examples/quickstart.rs:
