/root/repo/target/debug/examples/urgent_job-7e19d5595439dd76.d: examples/urgent_job.rs

/root/repo/target/debug/examples/urgent_job-7e19d5595439dd76: examples/urgent_job.rs

examples/urgent_job.rs:
