/root/repo/target/debug/examples/repro_nest-96042a98588ecc06.d: crates/obs/examples/repro_nest.rs

/root/repo/target/debug/examples/repro_nest-96042a98588ecc06: crates/obs/examples/repro_nest.rs

crates/obs/examples/repro_nest.rs:
