/root/repo/target/debug/examples/urgent_job-b581ec0e98dd154e.d: examples/urgent_job.rs

/root/repo/target/debug/examples/urgent_job-b581ec0e98dd154e: examples/urgent_job.rs

examples/urgent_job.rs:
