/root/repo/target/debug/examples/compare_policies-163a055713d9ea09.d: examples/compare_policies.rs

/root/repo/target/debug/examples/compare_policies-163a055713d9ea09: examples/compare_policies.rs

examples/compare_policies.rs:
