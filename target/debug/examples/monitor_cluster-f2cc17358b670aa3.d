/root/repo/target/debug/examples/monitor_cluster-f2cc17358b670aa3.d: examples/monitor_cluster.rs

/root/repo/target/debug/examples/monitor_cluster-f2cc17358b670aa3: examples/monitor_cluster.rs

examples/monitor_cluster.rs:
