/root/repo/target/debug/examples/quickstart-a223a2220f28c6eb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a223a2220f28c6eb: examples/quickstart.rs

examples/quickstart.rs:
