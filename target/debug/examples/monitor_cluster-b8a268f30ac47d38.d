/root/repo/target/debug/examples/monitor_cluster-b8a268f30ac47d38.d: examples/monitor_cluster.rs Cargo.toml

/root/repo/target/debug/examples/libmonitor_cluster-b8a268f30ac47d38.rmeta: examples/monitor_cluster.rs Cargo.toml

examples/monitor_cluster.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
