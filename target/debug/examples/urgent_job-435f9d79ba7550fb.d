/root/repo/target/debug/examples/urgent_job-435f9d79ba7550fb.d: examples/urgent_job.rs

/root/repo/target/debug/examples/urgent_job-435f9d79ba7550fb: examples/urgent_job.rs

examples/urgent_job.rs:
