/root/repo/target/debug/examples/quickstart-d1e4b34480a83569.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d1e4b34480a83569.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
