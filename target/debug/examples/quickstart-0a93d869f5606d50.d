/root/repo/target/debug/examples/quickstart-0a93d869f5606d50.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-0a93d869f5606d50: examples/quickstart.rs

examples/quickstart.rs:
