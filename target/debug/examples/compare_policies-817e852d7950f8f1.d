/root/repo/target/debug/examples/compare_policies-817e852d7950f8f1.d: examples/compare_policies.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_policies-817e852d7950f8f1.rmeta: examples/compare_policies.rs Cargo.toml

examples/compare_policies.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
