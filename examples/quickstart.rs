//! Quickstart: monitor a shared cluster, allocate nodes for an MPI job with
//! the paper's network-and-load-aware algorithm, run the job, and compare
//! against what a naive allocation would have cost.
//!
//! Run with: `cargo run --release --example quickstart`

use nlrm::prelude::*;

fn main() {
    // 1. The paper's testbed: 60 heterogeneous nodes behind 4 GigE
    //    switches, with students generating background load.
    let mut cluster = iitk_cluster(42);
    println!(
        "cluster: {} nodes, {} switches",
        cluster.num_nodes(),
        cluster.topology().num_switches()
    );

    // 2. Start the Resource Monitor and let the daemons collect ten
    //    minutes of node state, latency and bandwidth data.
    let mut monitor = MonitorRuntime::new(&cluster);
    let snapshot = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(600))
        .expect("monitoring warm-up");
    println!(
        "monitor: {} usable nodes, max sample age {}",
        snapshot.usable_nodes().len(),
        snapshot
            .max_sample_age()
            .map(|d| d.to_string())
            .unwrap_or_default()
    );

    // 3. Request 32 MPI processes, 4 per node, for a communication-bound
    //    job (the paper's miniMD setting: alpha = 0.3, beta = 0.7).
    let request = AllocationRequest::minimd(32);
    let allocation = NetworkLoadAwarePolicy::new()
        .allocate(&snapshot, &request)
        .expect("allocation");
    let hosts: Vec<&str> = allocation
        .node_list()
        .iter()
        .map(|&n| cluster.spec(n).hostname.as_str())
        .collect();
    println!("allocated: {hosts:?}");
    println!(
        "  group mean compute load {:.3}, mean network load {:.3}, Eq.4 cost {:.4}",
        allocation.diagnostics.mean_compute_load,
        allocation.diagnostics.mean_network_load,
        allocation.diagnostics.total_cost,
    );

    // 4. Execute a miniMD proxy run on the chosen nodes.
    let workload = MiniMd::new(16).with_steps(100);
    let comm = Communicator::new(allocation.rank_map.clone());
    let timing = execute(&mut cluster.clone(), &comm, &workload);
    println!(
        "miniMD(s=16): {:.2} s total ({:.0}% communication)",
        timing.total_s,
        timing.comm_fraction() * 100.0
    );

    // 5. What would a random pick have cost on the same cluster state?
    let random = RandomPolicy::new(7)
        .allocate(&snapshot, &request)
        .expect("random allocation");
    let random_comm = Communicator::new(random.rank_map.clone());
    let random_timing = execute(&mut cluster.clone(), &random_comm, &workload);
    println!(
        "random allocation: {:.2} s — network-and-load-aware saved {:.0}%",
        random_timing.total_s,
        (1.0 - timing.total_s / random_timing.total_s) * 100.0
    );
}
