//! The "urgent job" scenario from the paper's introduction: a shared lab
//! cluster doubles as an on-demand platform for urgent MPI jobs (epidemic
//! or wildfire modeling), because supercomputer queues take days.
//!
//! Demonstrates the §6 wait-or-allocate advisor: the same request is judged
//! on a normally-loaded cluster (run it now) and on an overloaded one
//! (better to wait — "there are not enough lightly loaded processors").
//!
//! Run with: `cargo run --release --example urgent_job`

use nlrm::cluster::iitk::iitk_cluster_with_profile;
use nlrm::prelude::*;

fn advise_on(profile: ClusterProfile, label: &str) {
    let mut cluster = iitk_cluster_with_profile(profile, 99);
    let mut monitor = MonitorRuntime::new(&cluster);
    let snapshot = monitor
        .warm_snapshot(&mut cluster, Duration::from_secs(600))
        .expect("monitoring");

    // an urgent epidemic-model-style job: 48 ranks, communication-heavy
    let request = AllocationRequest::new(48, Some(4), 0.3, 0.7);
    let advice = advise(&snapshot, &request, &AdvisorConfig::default()).expect("advice");

    println!("== {label} ==");
    match &advice {
        Advice::Allocate(alloc) => {
            println!("verdict: RUN NOW on {} nodes", alloc.node_list().len());
            let comm = Communicator::new(alloc.rank_map.clone());
            let timing = execute(&mut cluster, &comm, &MiniMd::new(24).with_steps(100));
            println!(
                "executed: {:.1} s ({:.0}% communication)",
                timing.total_s,
                timing.comm_fraction() * 100.0
            );
        }
        Advice::Wait {
            reason,
            best_available,
        } => {
            println!("verdict: WAIT — {reason}");
            println!(
                "(best group available anyway: {:?})",
                best_available
                    .node_list()
                    .iter()
                    .map(|&n| cluster.spec(n).hostname.clone())
                    .collect::<Vec<_>>()
            );
        }
    }
    println!();
}

fn main() {
    advise_on(ClusterProfile::shared_lab(), "normal afternoon in the lab");
    advise_on(
        ClusterProfile::overloaded(),
        "assignment-deadline night (overloaded)",
    );
}
