//! The Resource Monitor in action: daemons, failover, and staleness.
//!
//! Walks through the paper's §4 scenarios on a simulated cluster:
//! a daemon crash (relaunched by the central monitor), a master failure
//! (slave promotes itself), a node failure (disappears from livehosts),
//! and finally the same daemon topology running on real OS threads.
//!
//! Run with: `cargo run --release --example monitor_cluster`

use nlrm::monitor::daemons::DaemonConfig;
use nlrm::monitor::runtime::DaemonKind;
use nlrm::monitor::threaded::{LiveCluster, ThreadedMonitor};
use nlrm::prelude::*;
use nlrm::topology::NodeId;

fn main() {
    let mut cluster = small_cluster(8, 11);
    let mut monitor = MonitorRuntime::new(&cluster);

    // --- warm-up: all daemons publish ---
    monitor.run_until(&mut cluster, SimTime::from_secs(360));
    let snap = monitor.snapshot(cluster.now()).unwrap();
    println!(
        "after warm-up: {} usable nodes, {} dead daemons",
        snap.usable_nodes().len(),
        monitor.dead_daemons()
    );

    // --- scenario 1: the bandwidth daemon crashes ---
    monitor.kill_daemon(DaemonKind::Bandwidth);
    monitor.kill_daemon(DaemonKind::NodeState(NodeId(3)));
    println!(
        "killed BandwidthD and NodeStateD(3): {} dead",
        monitor.dead_daemons()
    );
    let target = cluster.now() + Duration::from_secs(60);
    monitor.run_until(&mut cluster, target);
    println!(
        "one supervision sweep later: {} dead, {} relaunches so far",
        monitor.dead_daemons(),
        monitor.central().relaunch_count
    );

    // --- scenario 2: the central monitor's master dies ---
    let old_master = monitor.central().master().host;
    monitor.central_mut().kill_master();
    let target = cluster.now() + Duration::from_secs(120);
    monitor.run_until(&mut cluster, target);
    println!(
        "master on {} killed; new master on {} (failovers: {})",
        old_master,
        monitor.central().master().host,
        monitor.central().failover_count
    );

    // --- scenario 3: a node fails ---
    let t_fail = cluster.now() + Duration::from_secs(30);
    cluster.schedule_failure(t_fail, NodeId(5));
    monitor.run_until(&mut cluster, t_fail + Duration::from_secs(60));
    let snap = monitor.snapshot(cluster.now()).unwrap();
    println!(
        "node 5 failed: livehosts now has {} nodes ({:?})",
        snap.usable_nodes().len(),
        snap.usable_nodes().iter().map(|n| n.0).collect::<Vec<_>>()
    );

    // --- scenario 4: the same daemons on real OS threads ---
    println!("\nstarting the threaded monitor (1000x speedup) ...");
    let live = LiveCluster::new(small_cluster(4, 23), 1000.0);
    let threaded = ThreadedMonitor::start(live.clone(), DaemonConfig::default());
    std::thread::sleep(std::time::Duration::from_millis(800));
    let snap = ClusterSnapshot::assemble(threaded.store(), 4, live.now()).unwrap();
    println!(
        "threaded monitor after 0.8 s wall ({} virtual): {} usable nodes, \
         {} store records",
        live.now(),
        snap.usable_nodes().len(),
        threaded.store().len()
    );
    threaded.stop();
    println!("threaded monitor stopped cleanly");
}
