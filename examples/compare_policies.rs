//! Head-to-head policy comparison on one cluster state — a miniature of the
//! paper's evaluation protocol (§5): all four allocation policies decide on
//! the same monitoring snapshot, then each runs the same workload on an
//! identical clone of the cluster.
//!
//! Run with: `cargo run --release --example compare_policies`

use nlrm::apps::synthetic::AllToAllHeavy;
use nlrm::bench::runner::{paper_policies, Experiment};
use nlrm::mpi::pattern::Workload;
use nlrm::prelude::*;

fn main() {
    let mut env = Experiment::new(iitk_cluster(7));
    env.advance(Duration::from_secs(600));

    let workloads: Vec<(Box<dyn Workload>, AllocationRequest)> = vec![
        (
            Box::new(MiniMd::new(16).with_steps(100)),
            AllocationRequest::minimd(32),
        ),
        (
            Box::new(MiniFe::new(96).with_iterations(100)),
            AllocationRequest::minife(32),
        ),
        (
            Box::new(AllToAllHeavy {
                gcycles: 0.05,
                pair_bytes: 5e4,
                steps: 50,
            }),
            AllocationRequest::new(32, Some(4), 0.1, 0.9),
        ),
    ];

    for (workload, request) in &workloads {
        println!(
            "== {} ({} procs, alpha={}) ==",
            workload.name(),
            request.procs,
            request.alpha
        );
        let results = env
            .compare(&mut paper_policies(3), request, workload.as_ref())
            .expect("comparison");
        let best = results
            .iter()
            .map(|r| r.timing.total_s)
            .fold(f64::INFINITY, f64::min);
        for r in &results {
            println!(
                "  {:<20} {:>8.2} s  (comm {:>3.0}%, load/core {:.2}){}",
                r.policy,
                r.timing.total_s,
                r.timing.comm_fraction() * 100.0,
                r.timing.mean_load_per_core,
                if r.timing.total_s <= best {
                    "  <- fastest"
                } else {
                    ""
                }
            );
        }
        env.advance(Duration::from_secs(300));
        println!();
    }
}
